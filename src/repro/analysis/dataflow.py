"""Forward taint/dataflow over the linked call graph.

The engine is deliberately small: a taint *configuration* is three sets —
entry nodes (sources), a sink predicate over function nodes, and
sanitizer nodes that cut propagation — and a *flow* is a witness path
from an entry to a node carrying a sink fact, discovered by BFS over the
call graph with parent pointers.  Every flow-sensitive rule (CSD009–
CSD012) is one or two configurations over the same graph, which keeps
the rules declarative and the traversal logic in one place.

Two engines live here:

* :func:`find_flows` — function-level taint for call-reachability rules
  (decode discipline, wall-clock escape, exception taxonomy).
* :func:`attribute_closure` — type-level reachability over the class
  attribute graph for the checkpoint-purity rule, walking annotated and
  inferred attribute types from a root class and reporting
  pickle-hostile markers along named witness paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .callgraph import CallGraph, FunctionNode

#: a sink fact: (detail, line) — what fired at the reached node
SinkFact = Tuple[str, int]

#: accumulated per-edge taint tags for graph export
EdgeTaints = Dict[Tuple[str, str], Set[str]]


@dataclass
class TaintFlow:
    """One witness: an entry function reaching a sink fact."""

    entry: str
    node: str
    detail: str
    line: int
    #: call chain, entry first, sink-bearing node last
    path: List[str] = field(default_factory=list)

    def render_path(self) -> str:
        return " -> ".join(self.path)


def find_flows(
    graph: CallGraph,
    entries: Iterable[str],
    sink_facts: Callable[[FunctionNode], Iterable[SinkFact]],
    sanitizers: Optional[Set[str]] = None,
) -> List[TaintFlow]:
    """All witness flows from ``entries`` to nodes with sink facts.

    ``sanitizers`` terminate propagation: a sanitizer node is still
    *checked* for sink facts of its own (a sanitizer that itself sinks
    is not absolved) but nothing past it is reached through it.
    """
    sanitizers = sanitizers or set()
    parents = graph.reachable(entries, stop=sanitizers)
    flows: List[TaintFlow] = []
    for qualname in parents:
        node = graph.function(qualname)
        if node is None:
            continue
        for detail, line in sink_facts(node):
            path = graph.path_to(parents, qualname)
            flows.append(
                TaintFlow(
                    entry=path[0],
                    node=qualname,
                    detail=detail,
                    line=line,
                    path=path,
                )
            )
    return flows


def mark_flow_edges(taints: EdgeTaints, flow: TaintFlow, tag: str) -> None:
    """Record ``tag`` on every call edge along a flow's witness path."""
    for caller, callee in zip(flow.path, flow.path[1:]):
        taints.setdefault((caller, callee), set()).add(tag)


def external_sink(
    predicate: Callable[[str], bool],
) -> Callable[[FunctionNode], Iterator[SinkFact]]:
    """Sink-fact source over a node's unresolved external call paths."""

    def facts(node: FunctionNode) -> Iterator[SinkFact]:
        for path, line in node.externals:
            if predicate(path):
                yield path, line

    return facts


# ----- class-attribute reachability (checkpoint purity) ----------------


@dataclass
class AttributeFinding:
    """One pickle-hostile fact reached from the root object graph."""

    #: dotted attribute path from the root, e.g. ``server.cache.entries``
    attr_path: str
    #: class that owns the offending attribute
    owner: str
    #: what is wrong: a marker string or ``unpicklable-type:<qualname>``
    problem: str
    line: int


def _resolve_type(graph: CallGraph, owner_module: str, path: str) -> Optional[str]:
    """A summary-canonical type path -> class qualname, best effort."""
    if path in graph.classes:
        return path
    candidate = f"{owner_module}.{path}"
    if candidate in graph.classes:
        return candidate
    leaf = path.split(".")[-1]
    matches = [q for q, c in graph.classes.items() if c.name == leaf]
    return matches[0] if len(matches) == 1 else None


def attribute_closure(
    graph: CallGraph,
    root: str,
    detached: Set[Tuple[str, str]],
    unpicklable_type_roots: Sequence[str] = (),
) -> List[AttributeFinding]:
    """Walk attribute types from ``root``; report pickle-hostile facts.

    ``detached`` holds ``(class leaf name, attr)`` pairs excluded from
    the pickled graph (attributes the checkpoint code nulls out or
    rebuilds on restore).  ``unpicklable_type_roots`` are dotted-path
    prefixes whose instances never pickle (``threading.`` …).
    """
    findings: List[AttributeFinding] = []
    root_cls = graph.classes.get(root)
    if root_cls is None:
        matches = [
            q for q, c in graph.classes.items() if c.name == root.split(".")[-1]
        ]
        if len(matches) != 1:
            return findings
        root_cls = graph.classes[matches[0]]
    seen: Set[str] = {root_cls.qualname}
    frontier: List[Tuple[str, str]] = [(root_cls.qualname, "")]
    while frontier:
        cls_qualname, prefix = frontier.pop()
        cls = graph.classes.get(cls_qualname)
        if cls is None:
            continue
        for attr, info in sorted(cls.attrs.items()):
            if (cls.name, attr) in detached or ("*", attr) in detached:
                continue
            attr_path = f"{prefix}.{attr}" if prefix else attr
            line = info.get("line", cls.line)
            # one problem per attribute: the fix (detach or waive) is
            # the same whichever marker fired first
            markers = info.get("markers", [])
            flagged = bool(markers)
            if markers:
                findings.append(
                    AttributeFinding(
                        attr_path=attr_path,
                        owner=cls.qualname,
                        problem=markers[0],
                        line=line,
                    )
                )
            for type_path in info.get("types", []):
                if any(
                    type_path.startswith(p) for p in unpicklable_type_roots
                ):
                    if not flagged:
                        flagged = True
                        findings.append(
                            AttributeFinding(
                                attr_path=attr_path,
                                owner=cls.qualname,
                                problem=f"unpicklable-type:{type_path}",
                                line=line,
                            )
                        )
                    continue
                resolved = _resolve_type(graph, cls.module, type_path)
                if resolved is not None and resolved not in seen:
                    seen.add(resolved)
                    frontier.append((resolved, attr_path))
    return findings


__all__ = [
    "AttributeFinding",
    "EdgeTaints",
    "SinkFact",
    "TaintFlow",
    "attribute_closure",
    "external_sink",
    "find_flows",
    "mark_flow_edges",
]
