"""Analysis engine: run rules over a project and classify findings.

The pipeline is: load every source file once, run each rule's per-file
and per-project hooks, then classify raw findings into *waived*
(silenced by a ``# lint:`` comment), *baselined* (grandfathered in the
committed baseline) and *new*.  Parse failures and stale baseline
entries surface as findings of the meta-rule ``CSD000`` so neither can
rot silently.  Exit-code contract: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..errors import AnalysisError
from .baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    BaselineEntry,
    load_baseline,
)
from .callgraph import CallGraph, build_callgraph
from .findings import Finding
from .project import DEFAULT_ROOTS, Project, load_project
from .rules import get_rules
from .rules.base import Rule
from .summaries import SummaryCache

META_RULE = "CSD000"

#: default on-disk summary cache, relative to the project root
DEFAULT_CACHE_NAME = ".lint-cache.json"


@dataclass
class AnalysisReport:
    """Classified outcome of one analyzer run."""

    root: Path
    rules: List[str]
    files_scanned: int
    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    waived: List[Finding] = field(default_factory=list)
    stale_entries: List[BaselineEntry] = field(default_factory=list)
    #: linked call graph, present when a graph rule ran or an export
    #: was requested
    graph: Optional[CallGraph] = None
    #: (caller, callee) -> rule titles that tainted the edge
    edge_taints: Dict[Any, Any] = field(default_factory=dict)
    #: summary-cache hit/miss counts of this run (None: cache disabled)
    cache_stats: Optional[Dict[str, int]] = None

    @property
    def clean(self) -> bool:
        return not self.findings

    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def to_doc(self) -> Dict[str, Any]:
        return {
            "root": str(self.root),
            "rules": self.rules,
            "files_scanned": self.files_scanned,
            "findings": [f.to_doc() for f in self.findings],
            "baselined": [f.to_doc() for f in self.baselined],
            "waived": len(self.waived),
            "stale_baseline_entries": [
                e.to_doc() for e in self.stale_entries
            ],
            "clean": self.clean,
            "cache": self.cache_stats,
            "graph_coverage": (
                self.graph.coverage() if self.graph is not None else None
            ),
        }

    def format_lines(self) -> List[str]:
        lines = []
        for finding in self.findings:
            lines.append(finding.render())
            if finding.snippet:
                lines.append(f"    {finding.snippet}")
        counts = (
            f"{self.files_scanned} files, {len(self.rules)} rules: "
            f"{len(self.findings)} finding(s), "
            f"{len(self.baselined)} baselined, {len(self.waived)} waived"
        )
        lines.append(("FAIL " if self.findings else "OK ") + counts)
        return lines


def _meta_findings(project: Project, baseline: Baseline) -> List[Finding]:
    findings = []
    for sf in project.files:
        if sf.parse_error is not None:
            findings.append(
                Finding(
                    rule=META_RULE,
                    path=sf.relpath,
                    line=1,
                    message=f"file does not parse: {sf.parse_error}",
                )
            )
    for entry in baseline.stale_entries():
        findings.append(
            Finding(
                rule=META_RULE,
                path=entry.path,
                line=1,
                message=(
                    f"stale baseline entry for {entry.rule} "
                    f"({entry.snippet!r}) no longer matches anything; "
                    "remove it from the baseline"
                ),
                snippet=entry.snippet,
            )
        )
    return findings


def run_analysis(
    root: Union[str, Path],
    rule_ids: Optional[Sequence[str]] = None,
    baseline_path: Optional[Union[str, Path]] = None,
    roots: Sequence[str] = DEFAULT_ROOTS,
    cache_path: Optional[Union[str, Path]] = None,
    use_cache: bool = True,
    build_graph: bool = False,
) -> AnalysisReport:
    """Run the analyzer over one checkout and classify its findings.

    The call graph is linked lazily: only when a selected rule declares
    ``needs_graph`` or the caller forces ``build_graph`` (e.g. for a
    ``--graph`` export).  Summaries come through the digest-keyed
    on-disk cache unless ``use_cache`` is off; ``cache_path`` overrides
    the default ``<root>/.lint-cache.json`` location.
    """
    root = Path(root).resolve()
    project = load_project(root, roots=roots)
    rules: List[Rule] = get_rules(rule_ids)
    if baseline_path is None:
        baseline_path = root / DEFAULT_BASELINE_NAME
    baseline = load_baseline(baseline_path)

    cache: Optional[SummaryCache] = None
    if build_graph or any(rule.needs_graph for rule in rules):
        if use_cache:
            cache = SummaryCache(
                Path(cache_path)
                if cache_path is not None
                else root / DEFAULT_CACHE_NAME
            )
        project.graph = build_callgraph(project, cache)

    raw: List[Finding] = []
    for rule in rules:
        for sf in project.files:
            if rule.applies(sf):
                raw.extend(rule.visit(sf, project))
        raw.extend(rule.finish(project))

    report = AnalysisReport(
        root=root,
        rules=[rule.rule_id for rule in rules],
        files_scanned=len(project),
        graph=project.graph if isinstance(project.graph, CallGraph) else None,
        edge_taints=project.edge_taints,
        cache_stats=(
            {"hits": cache.hits, "misses": cache.misses}
            if cache is not None
            else None
        ),
    )
    for finding in raw:
        sf = project.file(finding.path)
        if sf is not None and sf.waived(
            finding.line, finding.rule, finding.waiver
        ):
            report.waived.append(finding)
        elif baseline.covers(finding):
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    report.findings.extend(_meta_findings(project, baseline))
    report.stale_entries = baseline.stale_entries()
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report


def default_root(start: Optional[Union[str, Path]] = None) -> Path:
    """Locate the repository root (the directory with ``pyproject.toml``).

    Walks up from ``start`` (default: cwd); falls back to the source
    checkout this package sits in.
    """
    here = Path(start) if start is not None else Path.cwd()
    for candidate in (here, *here.resolve().parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate.resolve()
    checkout = Path(__file__).resolve().parents[3]
    if (checkout / "pyproject.toml").is_file():
        return checkout
    raise AnalysisError(
        "cannot locate the project root (no pyproject.toml upward of "
        f"{here}); pass --root"
    )
