"""Project-wide symbol table and call graph, linked from file summaries.

The linker takes the per-file summaries of :mod:`.summaries` and builds
one :class:`CallGraph` over the whole checkout: a node per function
definition (module bodies count — decorator application and ``RULES``
tables run at import time) and an edge per resolvable call site,
function reference, ``functools.partial`` target or decorator
application.

Resolution is *static and conservative*.  What can be resolved
precisely is: bare names through the lexical scope chain and the
module's imports, ``self.method`` through the class hierarchy,
``self.attr.method`` and annotated-parameter receivers through the
attribute/parameter type map, and dotted module paths through the
project module index.  Calls on receivers with no inferable type fall
back to *class-hierarchy analysis* (CHA): an edge to every project
method of that name, minus an ambient-name blocklist (``get``, ``items``
…) that would otherwise wire every dict lookup into the graph.
``importlib``/``getattr`` indirection is not resolved at all — the
calling function is marked ``dynamic`` and exported as a known-imprecise
edge of the analysis.

Unresolved call paths whose head is not a project module are kept per
node as *external calls* (``time.time``, ``os.urandom`` …); the taint
rules treat those as sink facts.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .project import Project
from .summaries import SummaryCache, summarize_project

GRAPH_SCHEMA_VERSION = 1

#: method names resolved by CHA only when nothing better is known; these
#: ambient names (dict/list/str/set/file protocol) would otherwise tie
#: every container access into the graph
AMBIENT_METHODS = frozenset(
    {
        "get",
        "items",
        "keys",
        "values",
        "append",
        "add",
        "pop",
        "popleft",
        "update",
        "extend",
        "sort",
        "index",
        "count",
        "copy",
        "clear",
        "join",
        "split",
        "strip",
        "startswith",
        "endswith",
        "format",
        "encode",
        "read",
        "write",
        "close",
        "flush",
        "setdefault",
        "discard",
        "remove",
        "insert",
        "lower",
        "upper",
        "replace",
    }
)

#: receiver names conventionally typed in this codebase; used only when
#: no annotation or attribute type says otherwise
_RECEIVER_HINTS: Dict[str, Tuple[str, ...]] = {
    "cache": ("DecodeCache",),
    "decode_cache": ("DecodeCache",),
}


@dataclass
class Edge:
    """One resolved call-graph edge."""

    caller: str
    callee: str
    line: int
    kind: str  # call | method | cha | partial | ref | decorator

    def to_doc(self) -> Dict[str, Any]:
        return {
            "caller": self.caller,
            "callee": self.callee,
            "line": self.line,
            "kind": self.kind,
        }


@dataclass
class FunctionNode:
    """One function definition (or module body) in the graph."""

    qualname: str
    module: str
    relpath: str
    name: str
    line: int
    cls: Optional[str]
    is_lambda: bool
    dynamic: bool
    summary: Dict[str, Any]
    #: unresolved canonical call paths (``time.time``) with lines
    externals: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def kind(self) -> str:
        if self.name == "<module>":
            return "module"
        if self.is_lambda:
            return "lambda"
        return "method" if self.cls else "function"


@dataclass
class ClassNode:
    """One class definition with its attribute/type map."""

    qualname: str
    module: str
    relpath: str
    name: str
    line: int
    bases: List[str]
    #: attr name -> {"types": [qualnames], "markers": [...], "line": int}
    attrs: Dict[str, Dict[str, Any]]
    methods: Dict[str, str] = field(default_factory=dict)


class CallGraph:
    """The linked interprocedural model of one project checkout."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ClassNode] = {}
        self.edges: List[Edge] = []
        self._out: Dict[str, List[Edge]] = {}
        self._in: Dict[str, List[Edge]] = {}
        self.modules: Set[str] = set()
        #: independent AST count of defs under ``src/repro`` (coverage
        #: denominator, set by :func:`build_callgraph`)
        self.defined_src_functions = 0

    # ----- queries -----------------------------------------------------

    def callees(self, qualname: str) -> List[Edge]:
        return self._out.get(qualname, [])

    def callers(self, qualname: str) -> List[Edge]:
        return self._in.get(qualname, [])

    def function(self, qualname: str) -> Optional[FunctionNode]:
        return self.functions.get(qualname)

    def functions_in(self, relpath_prefixes: Sequence[str]) -> List[FunctionNode]:
        return [
            node
            for node in self.functions.values()
            if any(
                node.relpath == p or node.relpath.startswith(p)
                for p in relpath_prefixes
            )
        ]

    def class_descendants(self, root_names: Iterable[str]) -> Set[str]:
        """Leaf names of classes deriving (by name) from ``root_names``."""
        allowed = set(root_names)
        parents = {
            cls.name: [b.split(".")[-1] for b in cls.bases]
            for cls in self.classes.values()
        }
        changed = True
        while changed:
            changed = False
            for name, bases in parents.items():
                if name not in allowed and any(b in allowed for b in bases):
                    allowed.add(name)
                    changed = True
        return allowed

    def subclasses(self, qualname: str) -> Set[str]:
        """Qualnames of classes transitively deriving from ``qualname``."""
        by_base: Dict[str, List[str]] = {}
        for cls in self.classes.values():
            for base in cls.bases:
                by_base.setdefault(base, []).append(cls.qualname)
                leaf = base.split(".")[-1]
                if leaf != base:
                    by_base.setdefault(leaf, []).append(cls.qualname)
        seen: Set[str] = set()
        root = self.classes.get(qualname)
        frontier = deque([qualname] + ([root.name] if root else []))
        while frontier:
            current = frontier.popleft()
            for sub in by_base.get(current, []):
                if sub not in seen:
                    seen.add(sub)
                    frontier.append(sub)
                    frontier.append(self.classes[sub].name)
        return seen

    def reachable(
        self,
        entries: Iterable[str],
        stop: Optional[Set[str]] = None,
    ) -> Dict[str, Optional[str]]:
        """BFS closure over call edges: node -> BFS parent (entry -> None).

        ``stop`` nodes are never *traversed through* (their callees stay
        unreached via them) but are themselves recorded as reached, so a
        sanitizer both terminates the search and stays inspectable.
        """
        stop = stop or set()
        parents: Dict[str, Optional[str]] = {}
        frontier = deque()
        for entry in entries:
            if entry in self.functions and entry not in parents:
                parents[entry] = None
                if entry not in stop:
                    frontier.append(entry)
        while frontier:
            current = frontier.popleft()
            for edge in self.callees(current):
                nxt = edge.callee
                if nxt in parents or nxt not in self.functions:
                    continue
                parents[nxt] = current
                if nxt not in stop:
                    frontier.append(nxt)
        return parents

    @staticmethod
    def path_to(parents: Dict[str, Optional[str]], node: str) -> List[str]:
        """Witness path from some entry to ``node`` (entry first)."""
        path = [node]
        seen = {node}
        current: Optional[str] = node
        while current is not None:
            current = parents.get(current)
            if current is None or current in seen:
                break
            path.append(current)
            seen.add(current)
        return list(reversed(path))

    # ----- exports -----------------------------------------------------

    def coverage(self, prefix: str = "src/repro/") -> Dict[str, Any]:
        """How many of the project's defs under ``prefix`` became nodes.

        The denominator is an independent raw AST count (every
        FunctionDef/AsyncFunctionDef/Lambda under ``prefix``), so a
        summarizer that silently drops definitions shows up as a ratio
        below 1.0 rather than as a self-consistent lie.
        """
        in_scope = [
            n
            for n in self.functions.values()
            if n.relpath.startswith(prefix) and n.name != "<module>"
        ]
        defined = self.defined_src_functions
        return {
            "prefix": prefix,
            "functions_defined": defined,
            "functions_in_graph": len(in_scope),
            "ratio": (len(in_scope) / defined) if defined else 1.0,
            "graph_nodes": len(self.functions),
            "edges": len(self.edges),
        }

    def to_doc(
        self, taints: Optional[Dict[Tuple[str, str], List[str]]] = None
    ) -> Dict[str, Any]:
        """Schema-versioned JSON document of the whole graph."""
        taints = taints or {}
        return {
            "schema_version": GRAPH_SCHEMA_VERSION,
            "modules": sorted(self.modules),
            "functions": [
                {
                    "qualname": n.qualname,
                    "module": n.module,
                    "path": n.relpath,
                    "line": n.line,
                    "kind": n.kind,
                    "dynamic": n.dynamic,
                    "externals": [
                        {"path": p, "line": line} for p, line in n.externals
                    ],
                }
                for n in sorted(
                    self.functions.values(), key=lambda n: n.qualname
                )
            ],
            "classes": [
                {
                    "qualname": c.qualname,
                    "path": c.relpath,
                    "line": c.line,
                    "bases": c.bases,
                    "attrs": c.attrs,
                }
                for c in sorted(self.classes.values(), key=lambda c: c.qualname)
            ],
            "edges": [
                dict(
                    e.to_doc(),
                    taints=sorted(taints.get((e.caller, e.callee), [])),
                )
                for e in self.edges
            ],
            "coverage": self.coverage(),
        }

    def to_dot(
        self, taints: Optional[Dict[Tuple[str, str], List[str]]] = None
    ) -> str:
        """GraphViz rendering; tainted edges are colored and labelled."""
        taints = taints or {}
        lines = [
            "digraph callgraph {",
            "  rankdir=LR;",
            '  node [shape=box, fontsize=9, fontname="monospace"];',
        ]
        for node in sorted(self.functions.values(), key=lambda n: n.qualname):
            attrs = [f'label="{node.qualname}"']
            if node.dynamic:
                attrs.append('style=dashed color=orange')
            lines.append(f'  "{node.qualname}" [{", ".join(attrs)}];')
        for edge in self.edges:
            marks = sorted(taints.get((edge.caller, edge.callee), []))
            attrs = [f'label="{edge.kind}"', "fontsize=8"]
            if marks:
                attrs = [f'label="{",".join(marks)}"', "color=red", "fontsize=8"]
            lines.append(
                f'  "{edge.caller}" -> "{edge.callee}" [{", ".join(attrs)}];'
            )
        lines.append("}")
        return "\n".join(lines)


class _Linker:
    """Resolves summary call sites into graph edges."""

    def __init__(self, summaries: Sequence[Dict[str, Any]]):
        self.summaries = summaries
        self.graph = CallGraph()
        #: module -> {local top-level name -> qualname}
        self._module_scope: Dict[str, Dict[str, str]] = {}
        #: module -> import alias map
        self._imports: Dict[str, Dict[str, str]] = {}
        #: method name -> [method qualnames] (CHA index)
        self._methods_named: Dict[str, List[str]] = {}
        #: class qualname by canonical path and by (module, name)
        self._class_by_path: Dict[str, str] = {}
        #: function qualname by canonical dotted path
        self._func_by_path: Dict[str, str] = {}
        #: parent scope of each function (lexical)
        self._parent: Dict[str, str] = {}

    # ----- index construction ------------------------------------------

    def build(self) -> CallGraph:
        for doc in self.summaries:
            self._index_file(doc)
        self._index_methods()
        for doc in self.summaries:
            for fdoc in doc["functions"]:
                self._link_function(doc, fdoc)
        return self.graph

    def _index_file(self, doc: Dict[str, Any]) -> None:
        module = doc["module"]
        # top-level names live in the synthetic module-body node's scope
        module_body = f"{module}.<module>"
        self.graph.modules.add(module)
        self._imports[module] = doc.get("imports", {})
        scope = self._module_scope.setdefault(module, {})
        for fdoc in doc["functions"]:
            node = FunctionNode(
                qualname=fdoc["qualname"],
                module=module,
                relpath=doc["path"],
                name=fdoc["name"],
                line=fdoc["line"],
                cls=fdoc.get("cls"),
                is_lambda=fdoc.get("lambda", False),
                dynamic=fdoc.get("dynamic", False),
                summary=fdoc,
            )
            self.graph.functions[node.qualname] = node
            parent = node.qualname.rsplit(".", 1)[0]
            self._parent[node.qualname] = parent
            self._func_by_path[node.qualname] = node.qualname
            if parent == module_body and node.name != "<module>":
                scope[node.name] = node.qualname
        for cdoc in doc["classes"]:
            cls = ClassNode(
                qualname=cdoc["qualname"],
                module=module,
                relpath=doc["path"],
                name=cdoc["name"],
                line=cdoc["line"],
                bases=list(cdoc.get("bases", [])),
                attrs=dict(cdoc.get("attrs", {})),
            )
            self.graph.classes[cls.qualname] = cls
            self._class_by_path[cls.qualname] = cls.qualname
            parent = cls.qualname.rsplit(".", 1)[0]
            self._parent[cls.qualname] = parent
            if parent == module_body:
                scope[cls.name] = cls.qualname

    def _index_methods(self) -> None:
        for node in self.graph.functions.values():
            if node.cls is not None:
                self._methods_named.setdefault(node.name, []).append(
                    node.qualname
                )
                cls = self.graph.classes.get(node.cls)
                if cls is not None:
                    cls.methods[node.name] = node.qualname

    # ----- resolution helpers ------------------------------------------

    def _resolve_import_path(self, module: str, path: str) -> Optional[str]:
        """A canonical dotted path -> function/class qualname, if internal."""
        if path in self._func_by_path:
            return path
        if path in self._class_by_path:
            return self._class_init(path)
        # longest-module-prefix match: repro.core.engine.CompressStreamDB.run
        parts = path.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            if mod not in self._module_scope:
                continue
            rest = parts[cut:]
            scope = self._module_scope[mod]
            head = scope.get(rest[0])
            if head is None:
                # re-exported name (``from .x import f`` in __init__)
                alias = self._imports.get(mod, {}).get(rest[0])
                if alias is not None:
                    return self._resolve_import_path(
                        mod, ".".join([alias] + rest[1:])
                    )
                return None
            if len(rest) == 1:
                if head in self.graph.classes:
                    return self._class_init(head)
                return head
            if head in self.graph.classes and len(rest) == 2:
                return self._method_on_class(head, rest[1])
            return None
        return None

    def _class_init(self, cls_qualname: str) -> Optional[str]:
        """Constructing a class calls its (possibly inherited) __init__."""
        resolved = self._method_on_class(cls_qualname, "__init__")
        return resolved or cls_qualname + ".__init__"

    def _mro(self, cls_qualname: str) -> List[str]:
        """Linearized ancestry (best effort, name-resolved bases)."""
        out: List[str] = []
        frontier = deque([cls_qualname])
        seen: Set[str] = set()
        while frontier:
            current = frontier.popleft()
            if current in seen:
                continue
            seen.add(current)
            cls = self.graph.classes.get(current)
            if cls is None:
                continue
            out.append(current)
            for base in cls.bases:
                resolved = self._resolve_class_path(cls.module, base)
                if resolved is not None:
                    frontier.append(resolved)
        return out

    def _resolve_class_path(self, module: str, path: str) -> Optional[str]:
        if path in self.graph.classes:
            return path
        head, _, rest = path.partition(".")
        local = self._module_scope.get(module, {}).get(head)
        if local in self.graph.classes and not rest:
            return local
        # canonical dotted path
        parts = path.split(".")
        for cut in range(len(parts), 0, -1):
            mod = ".".join(parts[: cut - 1]) if cut > 1 else None
            candidate = (
                self._module_scope.get(mod, {}).get(parts[cut - 1])
                if mod
                else None
            )
            if candidate in self.graph.classes and cut == len(parts):
                return candidate
        # last resort: unique class of that leaf name
        leaf = path.split(".")[-1]
        matches = [
            q for q, c in self.graph.classes.items() if c.name == leaf
        ]
        return matches[0] if len(matches) == 1 else None

    def _method_on_class(
        self, cls_qualname: str, method: str
    ) -> Optional[str]:
        for ancestor in self._mro(cls_qualname):
            cls = self.graph.classes.get(ancestor)
            if cls and method in cls.methods:
                return cls.methods[method]
        return None

    def _virtual_targets(self, cls_qualname: str, method: str) -> List[str]:
        """Static + virtual dispatch: the method on the class, its
        ancestors (inherited) and its descendants (overrides)."""
        targets: List[str] = []
        base = self._method_on_class(cls_qualname, method)
        if base is not None:
            targets.append(base)
        for sub in self.graph.subclasses(cls_qualname):
            cls = self.graph.classes.get(sub)
            if cls and method in cls.methods:
                targets.append(cls.methods[method])
        return list(dict.fromkeys(targets))

    def _lexical_lookup(self, qualname: str, name: str) -> Optional[str]:
        """Resolve a bare name through enclosing scopes then the module."""
        scope = self._parent.get(qualname)
        while scope is not None:
            if scope in self.graph.classes:
                # class bodies are not visible as bare names from methods
                scope = self._parent.get(scope)
                continue
            candidate = f"{scope}.{name}"
            if candidate in self.graph.functions:
                return candidate
            if scope.endswith(".<module>"):
                module = scope[: -len(".<module>")]
                target = self._module_scope.get(module, {}).get(name)
                if target is not None:
                    if target in self.graph.classes:
                        return self._class_init(target)
                    return target
                break
            scope = self._parent.get(scope)
        return None

    def _receiver_types(
        self, fdoc: Dict[str, Any], module: str, head: str
    ) -> List[str]:
        """Candidate class qualnames for a receiver name."""
        out: List[str] = []
        for path in fdoc.get("params", {}).get(head, []):
            resolved = self._resolve_class_path(module, path)
            if resolved is not None:
                out.append(resolved)
        if not out:
            for hint in _RECEIVER_HINTS.get(head, ()):
                resolved = self._resolve_class_path(module, hint)
                if resolved is not None:
                    out.append(resolved)
        return out

    # ----- linking one function ----------------------------------------

    def _add_edge(
        self, caller: str, callee: Optional[str], line: int, kind: str
    ) -> None:
        if callee is None or callee not in self.graph.functions:
            return
        if callee == caller:
            return
        edge = Edge(caller=caller, callee=callee, line=line, kind=kind)
        self.graph.edges.append(edge)
        self.graph._out.setdefault(caller, []).append(edge)
        self.graph._in.setdefault(callee, []).append(edge)

    def _link_function(
        self, doc: Dict[str, Any], fdoc: Dict[str, Any]
    ) -> None:
        module = doc["module"]
        qualname = fdoc["qualname"]
        node = self.graph.functions[qualname]
        imports = self._imports.get(module, {})

        # nested definitions: defining scope -> inner function
        for other in doc["functions"]:
            if self._parent.get(other["qualname"]) == qualname:
                self._add_edge(
                    qualname, other["qualname"], other["line"], "ref"
                )

        # decorator application edges
        decorator_heads: Set[str] = set()
        for dec in fdoc.get("decorators", []):
            decorator_heads.add(dec.split(".")[0])
            target = self._resolve_import_path(module, dec)
            if target is None:
                target = self._lexical_lookup(qualname, dec.split(".")[0])
            self._add_edge(qualname, target, fdoc["line"], "decorator")

        for site in fdoc.get("sites", []):
            self._link_site(node, module, qualname, fdoc, imports, site)

        # function references (tables, callbacks): resolve against the
        # lexical scope; unresolvable names silently drop.  Names already
        # consumed as decorators keep their more specific edge kind.
        for name in fdoc.get("refs", []):
            if name in decorator_heads:
                continue
            target = self._lexical_lookup(qualname, name)
            if target is not None and target != qualname:
                self._add_edge(qualname, target, fdoc["line"], "ref")

    def _link_site(
        self,
        node: FunctionNode,
        module: str,
        qualname: str,
        fdoc: Dict[str, Any],
        imports: Dict[str, str],
        site: Dict[str, Any],
    ) -> None:
        kind = site["kind"]
        line = site.get("line", fdoc["line"])
        if kind == "dynamic":
            return
        if kind == "name":
            name = site["name"]
            target = self._lexical_lookup(qualname, name)
            if target is not None:
                self._add_edge(qualname, target, line, "call")
                return
            canonical = imports.get(name)
            if canonical is not None:
                resolved = self._resolve_import_path(module, canonical)
                if resolved is not None:
                    self._add_edge(qualname, resolved, line, "call")
                else:
                    node.externals.append((canonical, line))
            return
        if kind == "partial":
            target_site = site.get("target")
            if target_site is not None:
                inner = dict(target_site, line=line)
                before = len(self.graph.edges)
                self._link_site(node, module, qualname, fdoc, imports, inner)
                # the target resolves through the normal name/attr logic;
                # re-label whatever edges that produced as partial bindings
                for edge in self.graph.edges[before:]:
                    edge.kind = "partial"
            return
        if kind == "method":
            self._cha(qualname, site["method"], line)
            return
        if kind == "attr":
            self._link_attr_site(node, module, qualname, fdoc, site, line)
            return
        if kind == "ref":
            target = self._lexical_lookup(qualname, site.get("name", ""))
            self._add_edge(qualname, target, line, "ref")

    def _link_attr_site(
        self,
        node: FunctionNode,
        module: str,
        qualname: str,
        fdoc: Dict[str, Any],
        site: Dict[str, Any],
        line: int,
    ) -> None:
        path = site["path"]
        parts = path.split(".")
        head, method = parts[0], parts[-1]
        if head == "self" and node.cls is not None:
            if len(parts) == 2:
                target = self._method_on_class(node.cls, method)
                if target is not None:
                    self._add_edge(qualname, target, line, "call")
                    return
                # the attribute may hold a typed callable/class instance
                types = self._attr_types(node.cls, method)
                for t in types:
                    self._add_edge(
                        qualname, self._class_init(t), line, "call"
                    )
                if types:
                    return
                self._cha(qualname, method, line, site)
                return
            if len(parts) == 3:
                attr = parts[1]
                types = self._attr_types(node.cls, attr)
                if not types:
                    for hint in _RECEIVER_HINTS.get(attr, ()):
                        resolved = self._resolve_class_path(module, hint)
                        if resolved is not None:
                            types.append(resolved)
                if types:
                    for t in types:
                        for target in self._virtual_targets(t, method):
                            self._add_edge(qualname, target, line, "method")
                    return
                self._cha(qualname, method, line, site)
                return
            self._cha(qualname, method, line, site)
            return
        # dotted module/import path (canonicalized at summary time)
        resolved = self._resolve_import_path(module, path)
        if resolved is not None:
            self._add_edge(qualname, resolved, line, "call")
            return
        # annotated-parameter or hinted receiver: ``codec.decode`` with
        # ``codec: Codec`` resolves through the hierarchy
        if len(parts) == 2:
            types = self._receiver_types(fdoc, module, head)
            if types:
                for t in types:
                    for target in self._virtual_targets(t, method):
                        self._add_edge(qualname, target, line, "method")
                return
            local = self._module_scope.get(module, {}).get(head)
            if local in self.graph.classes:
                target = self._method_on_class(local, method)
                if target is not None:
                    self._add_edge(qualname, target, line, "call")
                    return
        head_resolved = self._imports.get(module, {}).get(head, head)
        if head_resolved.split(".")[0] in self.graph.modules or any(
            m.startswith(head_resolved.split(".")[0] + ".")
            for m in self.graph.modules
        ):
            # internal path that did not resolve (e.g. attribute chain
            # through instances): fall back to CHA on the method name
            self._cha(qualname, method, line, site)
            return
        if (
            len(parts) == 2
            and method not in AMBIENT_METHODS
            and self._methods_named.get(method)
        ):
            # untyped receiver whose method name is defined on a project
            # class: class-hierarchy fallback rather than an external
            self._cha(qualname, method, line, site)
            return
        node.externals.append((path, line))

    def _attr_types(self, cls_qualname: str, attr: str) -> List[str]:
        out: List[str] = []
        for ancestor in self._mro(cls_qualname):
            cls = self.graph.classes.get(ancestor)
            if cls is None or attr not in cls.attrs:
                continue
            for path in cls.attrs[attr].get("types", []):
                resolved = self._resolve_class_path(cls.module, path)
                if resolved is not None and resolved not in out:
                    out.append(resolved)
        return out

    def _cha(
        self,
        qualname: str,
        method: str,
        line: int,
        site: Optional[Dict[str, Any]] = None,
    ) -> None:
        if method in AMBIENT_METHODS:
            return
        if site is not None and site.get("strcodec"):
            return
        for target in self._methods_named.get(method, []):
            self._add_edge(qualname, target, line, "cha")


def build_callgraph(
    project: Project, cache: Optional[SummaryCache] = None
) -> CallGraph:
    """Summarize (through ``cache`` if given) and link one project."""
    summaries = summarize_project(project.files, cache)
    graph = _Linker(summaries).build()
    if cache is not None:
        cache.save()
    defined = 0
    for sf in project.files:
        if sf.tree is not None and sf.relpath.startswith("src/repro/"):
            defined += sum(
                isinstance(
                    n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                )
                for n in ast.walk(sf.tree)
            )
    graph.defined_src_functions = defined
    return graph


__all__ = [
    "AMBIENT_METHODS",
    "CallGraph",
    "ClassNode",
    "Edge",
    "FunctionNode",
    "GRAPH_SCHEMA_VERSION",
    "build_callgraph",
]
