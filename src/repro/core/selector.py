"""Compression selectors: adaptive (the paper's), static, fixed-plan.

The adaptive selector is the heart of CompressStreamDB (Sec. IV-B): per
column, it prices every applicable codec with the system cost model on
statistics scanned from the next few batches, and picks the minimum total
time.  Identity ("no compression") is always in the pool, so the hybrid
uncompressed mode falls out naturally when compression cannot pay for
itself.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import AbstractSet, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..compression.base import Codec
from ..compression.registry import default_pool, get_codec
from ..errors import CodecError
from ..stats import ColumnStats
from ..stream.batch import Batch
from ..stream.schema import Schema
from .cost_model import CostModel
from .query_profile import QueryProfile


def column_stats_from_batches(
    batches: Sequence[Batch], schema: Schema, max_sample: int = 65536
) -> Dict[str, ColumnStats]:
    """Per-column statistics over a lookahead sample of batches.

    ``max_sample`` caps the per-column sample so a long lookahead cannot
    make re-decisions expensive; batches are concatenated most-recent last.
    """
    if not batches:
        raise CodecError("need at least one batch to compute statistics")
    stats: Dict[str, ColumnStats] = {}
    for f in schema:
        values = np.concatenate([b.column(f.name) for b in batches])
        if values.size > max_sample:
            values = values[-max_sample:]
        stats[f.name] = ColumnStats.from_values(values, size_c=f.size)
    return stats


class SelectorBase(ABC):
    """Maps column statistics to a per-column codec assignment.

    ``excluded`` maps column names to codec names the caller has demoted
    for that column (e.g. codecs that repeatedly failed on live data —
    the client's graceful-degradation path); selectors must never return
    an excluded codec for that column and fall back to identity when
    nothing else is applicable.
    """

    @abstractmethod
    def select(
        self,
        stats_by_column: Mapping[str, ColumnStats],
        profile: QueryProfile,
        size_b: int,
        excluded: Optional[Mapping[str, AbstractSet[str]]] = None,
    ) -> Dict[str, Codec]:
        """Choose one codec per column."""


class AdaptiveSelector(SelectorBase):
    """The paper's fine-grained cost-model-driven selector.

    ``switch_margin`` adds hysteresis: once a codec is chosen for a
    column, a challenger must beat it by more than this relative margin to
    replace it.  Estimates near a tie flip with sampling noise; hysteresis
    keeps decisions stable without giving up real wins (the re-decision
    ablation benchmark sweeps this knob).
    """

    def __init__(
        self,
        cost_model: CostModel,
        pool: Optional[Iterable[Codec]] = None,
        switch_margin: float = 0.0,
    ):
        if switch_margin < 0:
            raise CodecError("switch_margin cannot be negative")
        self.cost_model = cost_model
        self.pool: List[Codec] = list(pool) if pool is not None else default_pool()
        if not self.pool:
            raise CodecError("the selector pool cannot be empty")
        self.switch_margin = switch_margin
        self._previous: Dict[str, str] = {}

    def select(
        self,
        stats_by_column: Mapping[str, ColumnStats],
        profile: QueryProfile,
        size_b: int,
        excluded: Optional[Mapping[str, AbstractSet[str]]] = None,
    ) -> Dict[str, Codec]:
        referenced_bytes = sum(
            stats.size_c
            for name, stats in stats_by_column.items()
            if name in profile.referenced
        )
        choices: Dict[str, Codec] = {}
        for name, stats in stats_by_column.items():
            use = profile.use_of(name)
            banned = excluded.get(name, frozenset()) if excluded else frozenset()
            best: Optional[Codec] = None
            best_cost = float("inf")
            incumbent_cost: Optional[float] = None
            incumbent_name = self._previous.get(name)
            if incumbent_name in banned:
                incumbent_name = None
            for codec in self.pool:
                if codec.name in banned and codec.name != "identity":
                    continue
                if not codec.applicable(stats):
                    continue
                est = self.cost_model.estimate_column(
                    codec, stats, size_b, use, profile, referenced_bytes
                )
                if codec.name == incumbent_name:
                    incumbent_cost = est.total
                if est.total < best_cost:
                    best, best_cost = codec, est.total
            if best is None:
                best = get_codec("identity")
            elif (
                incumbent_cost is not None
                and best.name != incumbent_name
                and best_cost >= incumbent_cost / (1.0 + self.switch_margin)
            ):
                best = get_codec(incumbent_name)
            choices[name] = best
            self._previous[name] = best.name
        return choices


class StaticSelector(SelectorBase):
    """One fixed codec for every column (the Fig. 7 "Static" comparator and
    the single-codec columns of Figs. 5/6; ``identity`` is the baseline)."""

    def __init__(self, codec_name: str):
        self.codec = get_codec(codec_name)
        self._identity = get_codec("identity")

    def select(
        self,
        stats_by_column: Mapping[str, ColumnStats],
        profile: QueryProfile,
        size_b: int,
        excluded: Optional[Mapping[str, AbstractSet[str]]] = None,
    ) -> Dict[str, Codec]:
        choices: Dict[str, Codec] = {}
        for name, stats in stats_by_column.items():
            banned = excluded.get(name, frozenset()) if excluded else frozenset()
            usable = (
                self.codec.name not in banned and self.codec.applicable(stats)
            )
            choices[name] = self.codec if usable else self._identity
        return choices


class FixedPlanSelector(SelectorBase):
    """An explicit per-column codec mapping (for experiments and tests)."""

    def __init__(self, mapping: Mapping[str, str], default: str = "identity"):
        self.mapping = {name: get_codec(codec) for name, codec in mapping.items()}
        self.default = get_codec(default)
        self._identity = get_codec("identity")

    def select(
        self,
        stats_by_column: Mapping[str, ColumnStats],
        profile: QueryProfile,
        size_b: int,
        excluded: Optional[Mapping[str, AbstractSet[str]]] = None,
    ) -> Dict[str, Codec]:
        choices: Dict[str, Codec] = {}
        for name, stats in stats_by_column.items():
            codec = self.mapping.get(name, self.default)
            banned = excluded.get(name, frozenset()) if excluded else frozenset()
            usable = codec.name not in banned and codec.applicable(stats)
            choices[name] = codec if usable else self._identity
        return choices
