"""The system cost model of Sec. IV-C (Eqs. 1-9).

``t = t_compress + t_trans + t_decom + t_query`` per batch, where

* Eq. 2: ``t_compress = α · t_wait + (T_mem + T_op) / N_client`` — the
  instruction terms become the calibrated linear model
  (:mod:`.calibration`), ``N_client`` a relative speed factor;
* Eq. 4/5: ``t_trans = Size_T · Size_B / (r · bandwidth) (+ latency)``;
* Eq. 6: ``t_decom = β · (T_mem + T_op) / N_server`` — β also turns on
  when the *query* needs a capability the codec lacks (forced decode);
* Eq. 8/9: ``t_query = t_op + t_mem / r'`` with ``r' = r`` for direct
  codecs and 1 otherwise.

The estimate is per column, matching the fine-grained per-column selection
of Sec. IV-B; batch totals are sums over columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..compression.base import Codec
from ..errors import CalibrationError
from ..net.channel import Channel
from ..stats import ColumnStats
from .calibration import CalibrationTable
from .query_profile import ColumnUse, QueryProfile

_MIN_RATIO = 1e-9


@dataclass(frozen=True)
class SystemParams:
    """Machine and scenario parameters of Table II."""

    #: N_client / N_server relative speeds (1.0 = this machine as measured).
    client_speed: float = 1.0
    server_speed: float = 1.0
    #: t_wait: seconds a lazy codec waits for the batch to fill (Eq. 3).
    t_wait: float = 0.0
    #: fraction of baseline query time that is memory-bound (divided by r'
    #: in Eq. 8); stream kernels are predominantly memory-bound.
    memory_fraction: float = 0.75
    #: tuples/second the stream delivers; with a QueuedChannel this drives
    #: batch ready-times so link saturation produces queueing delay
    #: (Fig. 10's "system pauses").  None disables arrival modelling.
    arrival_rate_tps: Optional[float] = None


@dataclass(frozen=True)
class StageEstimate:
    """Estimated per-batch seconds of the four stages (Eq. 1)."""

    compress: float = 0.0
    trans: float = 0.0
    decompress: float = 0.0
    query: float = 0.0

    @property
    def total(self) -> float:
        return self.compress + self.trans + self.decompress + self.query

    def __add__(self, other: "StageEstimate") -> "StageEstimate":
        return StageEstimate(
            compress=self.compress + other.compress,
            trans=self.trans + other.trans,
            decompress=self.decompress + other.decompress,
            query=self.query + other.query,
        )


class CostModel:
    """Prices (codec, column) decisions for the adaptive selector."""

    def __init__(
        self,
        table: CalibrationTable,
        params: SystemParams,
        channel: Channel,
    ):
        self.table = table
        self.params = params
        self.channel = channel

    # ----- per-column estimate (the selector's objective) ---------------

    def estimate_column(
        self,
        codec: Codec,
        stats: ColumnStats,
        size_b: int,
        use: Optional[ColumnUse],
        profile: QueryProfile,
        referenced_bytes: int,
    ) -> StageEstimate:
        """Estimated cost of compressing one column with ``codec``.

        ``referenced_bytes`` is the total uncompressed byte width of all
        query-referenced columns, used to apportion the measured baseline
        query time (``profile.mem_seconds``/``op_seconds``) to this column.
        """
        timing = self.table.timing(codec.name)
        params = self.params
        scale = codec.cost_scale(stats, self.table.kindnum)

        # Eq. 2 -- compression
        alpha = 1.0 if codec.is_lazy else 0.0
        t_compress = alpha * params.t_wait + scale * timing.compress_seconds(
            size_b
        ) / max(params.client_speed, _MIN_RATIO)

        # Eq. 4/5 -- transmission
        r_wire = max(codec.estimate_transmitted_ratio(stats), _MIN_RATIO)
        column_bytes = size_b * stats.size_c / r_wire
        t_trans = (
            self.channel.transmit_seconds(int(column_bytes)) - self.channel.latency_s
        )
        t_trans = max(t_trans, 0.0)

        # Eq. 6 -- decompression (β, including query-forced decodes)
        decode = codec.needs_decompression or (
            use is not None and not use.served_directly_by(codec)
        )
        t_decom = 0.0
        if decode:
            t_decom = scale * timing.decompress_seconds(size_b) / max(
                params.server_speed, _MIN_RATIO
            )

        # Eq. 8/9 -- query
        t_query = 0.0
        if use is not None and referenced_bytes > 0:
            share = stats.size_c / referenced_bytes
            mem = profile.mem_seconds * share
            op = profile.op_seconds * share
            r_prime = 1.0 if decode else max(codec.estimate_ratio(stats), _MIN_RATIO)
            t_query = op + mem / r_prime
        return StageEstimate(
            compress=t_compress, trans=t_trans, decompress=t_decom, query=t_query
        )

    # ----- whole-batch estimate (Fig. 9 accuracy experiment) ---------------

    def estimate_batch(
        self,
        choices: Mapping[str, Codec],
        stats_by_column: Mapping[str, ColumnStats],
        size_b: int,
        profile: QueryProfile,
    ) -> StageEstimate:
        """Total estimated batch cost under a per-column codec assignment."""
        referenced_bytes = sum(
            stats_by_column[name].size_c
            for name in profile.referenced
            if name in stats_by_column
        )
        total = StageEstimate()
        lazy_somewhere = False
        for name, codec in choices.items():
            if name not in stats_by_column:
                raise CalibrationError(f"no statistics for column {name!r}")
            est = self.estimate_column(
                codec,
                stats_by_column[name],
                size_b,
                profile.use_of(name),
                profile,
                referenced_bytes,
            )
            if codec.is_lazy:
                lazy_somewhere = True
                # t_wait is paid once per batch, not once per lazy column
                est = StageEstimate(
                    compress=est.compress - self.params.t_wait,
                    trans=est.trans,
                    decompress=est.decompress,
                    query=est.query,
                )
            total = total + est
        # fixed per-batch terms: link latency once, batch wait once
        total = total + StageEstimate(
            compress=self.params.t_wait if lazy_somewhere else 0.0,
            trans=self.channel.latency_s if not self.channel.is_single_node else 0.0,
        )
        return total
