"""Stage profiler: per-stage time and byte accounting (the paper's server
profiler, Sec. VI).

All times are seconds: compression/decompression/query are wall-clock
measurements, transmission is the channel's virtual time (DESIGN.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

STAGE_WAIT = "wait"
STAGE_COMPRESS = "compress"
STAGE_TRANS = "trans"
STAGE_DECOMPRESS = "decompress"
STAGE_QUERY = "query"

STAGES = (STAGE_WAIT, STAGE_COMPRESS, STAGE_TRANS, STAGE_DECOMPRESS, STAGE_QUERY)


@dataclass
class BatchTiming:
    """Stage seconds of one batch."""

    wait: float = 0.0
    compress: float = 0.0
    trans: float = 0.0
    decompress: float = 0.0
    query: float = 0.0

    @property
    def total(self) -> float:
        return self.wait + self.compress + self.trans + self.decompress + self.query


@dataclass
class Profiler:
    """Accumulates stage seconds and volume counters over a run."""

    seconds: Dict[str, float] = field(
        default_factory=lambda: {stage: 0.0 for stage in STAGES}
    )
    batches: int = 0
    tuples: int = 0
    bytes_sent: int = 0
    bytes_uncompressed: int = 0
    per_batch: List[BatchTiming] = field(default_factory=list)

    def record_batch(
        self,
        timing: BatchTiming,
        tuples: int,
        bytes_sent: int,
        bytes_uncompressed: int,
    ) -> None:
        for stage in STAGES:
            self.seconds[stage] += getattr(timing, stage)
        self.batches += 1
        self.tuples += tuples
        self.bytes_sent += bytes_sent
        self.bytes_uncompressed += bytes_uncompressed
        self.per_batch.append(timing)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def breakdown(self) -> Dict[str, float]:
        """Fraction of total time per stage (empty run -> zeros)."""
        total = self.total_seconds
        if total <= 0:
            return {stage: 0.0 for stage in STAGES}
        return {stage: self.seconds[stage] / total for stage in STAGES}

    def merge(self, other: "Profiler") -> "Profiler":
        merged = Profiler()
        for stage in STAGES:
            merged.seconds[stage] = self.seconds[stage] + other.seconds[stage]
        merged.batches = self.batches + other.batches
        merged.tuples = self.tuples + other.tuples
        merged.bytes_sent = self.bytes_sent + other.bytes_sent
        merged.bytes_uncompressed = self.bytes_uncompressed + other.bytes_uncompressed
        merged.per_batch = self.per_batch + other.per_batch
        return merged
