"""Stage profiler: per-stage time and byte accounting (the paper's server
profiler, Sec. VI).

All times are seconds: compression/decompression/query are wall-clock
measurements, transmission is the channel's virtual time (DESIGN.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

__all__ = [
    "STAGE_WAIT",
    "STAGE_COMPRESS",
    "STAGE_TRANS",
    "STAGE_DECOMPRESS",
    "STAGE_QUERY",
    "STAGES",
    "BatchTiming",
    "Profiler",
    "OPERATOR_KINDS",
    "CoverageCell",
    "CoverageMatrix",
]

STAGE_WAIT = "wait"
STAGE_COMPRESS = "compress"
STAGE_TRANS = "trans"
STAGE_DECOMPRESS = "decompress"
STAGE_QUERY = "query"

STAGES = (STAGE_WAIT, STAGE_COMPRESS, STAGE_TRANS, STAGE_DECOMPRESS, STAGE_QUERY)


@dataclass
class BatchTiming:
    """Stage seconds of one batch."""

    wait: float = 0.0
    compress: float = 0.0
    trans: float = 0.0
    decompress: float = 0.0
    query: float = 0.0

    @property
    def total(self) -> float:
        return self.wait + self.compress + self.trans + self.decompress + self.query


@dataclass
class Profiler:
    """Accumulates stage seconds and volume counters over a run."""

    seconds: Dict[str, float] = field(
        default_factory=lambda: {stage: 0.0 for stage in STAGES}
    )
    batches: int = 0
    tuples: int = 0
    bytes_sent: int = 0
    bytes_uncompressed: int = 0
    per_batch: List[BatchTiming] = field(default_factory=list)

    def record_batch(
        self,
        timing: BatchTiming,
        tuples: int,
        bytes_sent: int,
        bytes_uncompressed: int,
    ) -> None:
        for stage in STAGES:
            self.seconds[stage] += getattr(timing, stage)
        self.batches += 1
        self.tuples += tuples
        self.bytes_sent += bytes_sent
        self.bytes_uncompressed += bytes_uncompressed
        self.per_batch.append(timing)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def breakdown(self) -> Dict[str, float]:
        """Fraction of total time per stage (empty run -> zeros)."""
        total = self.total_seconds
        if total <= 0:
            return {stage: 0.0 for stage in STAGES}
        return {stage: self.seconds[stage] / total for stage in STAGES}

    def merge(self, other: "Profiler") -> "Profiler":
        merged = Profiler()
        for stage in STAGES:
            merged.seconds[stage] = self.seconds[stage] + other.seconds[stage]
        merged.batches = self.batches + other.batches
        merged.tuples = self.tuples + other.tuples
        merged.bytes_sent = self.bytes_sent + other.bytes_sent
        merged.bytes_uncompressed = self.bytes_uncompressed + other.bytes_uncompressed
        merged.per_batch = self.per_batch + other.per_batch
        return merged


# ----- direct-path coverage -------------------------------------------------

#: Operator kinds a query column can feed (the oracle's coverage axes).
OPERATOR_KINDS = (
    "selection",
    "groupby",
    "aggregation",
    "projection",
    "distinct",
    "join",
    "window",
)


@dataclass
class CoverageCell:
    """How often one (codec, operator kind) pair executed on each path."""

    direct: int = 0
    decoded: int = 0

    @property
    def total(self) -> int:
        return self.direct + self.decoded


@dataclass
class CoverageMatrix:
    """Codec x operator-kind execution counts, split direct vs decoded.

    The differential oracle fills one of these per campaign from the
    server's per-batch ``direct_columns``/``decoded_columns`` reports; the
    ``direct`` counts prove which direct (on-compressed-codes) kernels a
    campaign actually exercised, while ``decoded`` counts cover the β = 1
    codecs that can never run direct.
    """

    cells: Dict[str, Dict[str, CoverageCell]] = field(default_factory=dict)

    def record(self, codec: str, kind: str, direct: bool, count: int = 1) -> None:
        cell = self.cells.setdefault(codec, {}).setdefault(kind, CoverageCell())
        if direct:
            cell.direct += count
        else:
            cell.decoded += count

    def kinds_for(self, codec: str, direct_only: bool = False) -> Tuple[str, ...]:
        """Operator kinds a codec was exercised under, in canonical order."""
        row = self.cells.get(codec, {})
        kinds = [
            kind
            for kind, cell in row.items()
            if (cell.direct if direct_only else cell.total) > 0
        ]
        return tuple(sorted(kinds, key=_kind_order))

    def undercovered(
        self, codecs: Sequence[str], min_kinds: int
    ) -> Dict[str, int]:
        """Codecs (of ``codecs``) hit by fewer than ``min_kinds`` kinds."""
        short = {}
        for codec in codecs:
            hit = len(self.kinds_for(codec))
            if hit < min_kinds:
                short[codec] = hit
        return short

    def merge(self, other: "CoverageMatrix") -> None:
        for codec, row in other.cells.items():
            for kind, cell in row.items():
                self.record(codec, kind, direct=True, count=cell.direct)
                self.record(codec, kind, direct=False, count=cell.decoded)

    def format_table(self) -> str:
        """Human-readable matrix: ``direct/decoded`` batch counts per cell."""
        codecs = sorted(self.cells)
        kinds = sorted(
            {kind for row in self.cells.values() for kind in row},
            key=_kind_order,
        )
        if not codecs or not kinds:
            return "(no coverage recorded)"
        width = max(12, *(len(k) + 2 for k in kinds))
        header = f"{'codec':10s}" + "".join(f"{k:>{width}s}" for k in kinds)
        lines = [header, "-" * len(header)]
        for codec in codecs:
            row = self.cells[codec]
            rendered = []
            for kind in kinds:
                cell = row.get(kind)
                if cell is None or cell.total == 0:
                    rendered.append(f"{'.':>{width}s}")
                else:
                    rendered.append(f"{f'{cell.direct}/{cell.decoded}':>{width}s}")
            lines.append(f"{codec:10s}" + "".join(rendered))
        lines.append(
            "(cells are direct/decoded column-batch counts; '.' = never hit)"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        return {
            codec: {
                kind: {"direct": cell.direct, "decoded": cell.decoded}
                for kind, cell in row.items()
            }
            for codec, row in self.cells.items()
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Mapping[str, Mapping[str, int]]]
    ) -> "CoverageMatrix":
        matrix = cls()
        for codec, row in data.items():
            for kind, cell in row.items():
                matrix.record(codec, kind, direct=True, count=int(cell["direct"]))
                matrix.record(codec, kind, direct=False, count=int(cell["decoded"]))
        return matrix


def _kind_order(kind: str) -> Tuple[int, str]:
    try:
        return (OPERATOR_KINDS.index(kind), kind)
    except ValueError:
        return (len(OPERATOR_KINDS), kind)
