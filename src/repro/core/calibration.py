"""Cost-model calibration: measured per-codec time coefficients.

The paper obtains the instruction counts of Eq. 2/6 by reading each
codec's assembly.  Python has no stable instruction counts, so we play the
same role empirically (DESIGN.md §3): each codec's compression and
decompression cost is fitted as ``t(n) = a * n + b`` seconds from timed
runs at two column sizes.  The fit is cached per process — calibration
runs once and is amortized over the stream, like the paper's "overhead can
be amortized during stream processing".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..compression.base import Codec
from ..compression.registry import all_codec_names, get_codec
from ..errors import CalibrationError


@dataclass(frozen=True)
class CodecTiming:
    """Linear time models, in seconds, for one codec."""

    compress_a: float  # seconds per element
    compress_b: float  # fixed seconds per batch
    decompress_a: float
    decompress_b: float

    def compress_seconds(self, n: int) -> float:
        return self.compress_a * n + self.compress_b

    def decompress_seconds(self, n: int) -> float:
        return self.decompress_a * n + self.decompress_b


@dataclass(frozen=True)
class CalibrationTable:
    """Fitted timings for a set of codecs.

    ``kindnum`` records the distinct-value count of the calibration column;
    plane-based codecs scale their coefficients by the cardinality ratio
    (see :meth:`repro.compression.base.Codec.cost_scale`).
    """

    timings: Dict[str, CodecTiming]
    kindnum: int = 1024

    #: stage-1 transform name -> the calibrated codec whose coefficients
    #: proxy that transform's per-element work (cascade composition below)
    STAGE1_PROXIES = {"dict": "dict", "delta": "deltachain", "bd": "bd"}

    def timing(self, codec_name: str) -> CodecTiming:
        try:
            return self.timings[codec_name]
        except KeyError:
            composed = self._composed_timing(codec_name)
            if composed is not None:
                return composed
            raise CalibrationError(
                f"codec {codec_name!r} was not calibrated"
            ) from None

    def _composed_timing(self, codec_name: str) -> Optional[CodecTiming]:
        """Stage-summed coefficients for an uncalibrated cascade.

        A cascade ``s1+s2`` costs roughly one pass of its stage-1 transform
        plus the stage-2 codec on the code array, so summing the calibrated
        linear models of a per-stage proxy generalizes Eqs. 2/6 to tables
        recorded before the cascade existed.  Freshly calibrated tables
        time cascades directly and never reach this fallback.
        """
        if "+" not in codec_name:
            return None
        stage1_name, stage2_name = codec_name.split("+", 1)
        proxy = self.STAGE1_PROXIES.get(stage1_name)
        if proxy is None:
            return None
        s1 = self.timings.get(proxy)
        s2 = self.timings.get(stage2_name)
        if s1 is None or s2 is None:
            return None
        return CodecTiming(
            compress_a=s1.compress_a + s2.compress_a,
            compress_b=s1.compress_b + s2.compress_b,
            decompress_a=s1.decompress_a + s2.decompress_a,
            decompress_b=s1.decompress_b + s2.decompress_b,
        )

    # ----- persistence (amortize calibration across processes) ----------

    def to_json(self) -> str:
        import json

        return json.dumps(
            {
                "version": 1,
                "kindnum": self.kindnum,
                "timings": {
                    name: [t.compress_a, t.compress_b, t.decompress_a, t.decompress_b]
                    for name, t in sorted(self.timings.items())
                },
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "CalibrationTable":
        import json

        try:
            doc = json.loads(text)
            if doc.get("version") != 1:
                raise CalibrationError(
                    f"unsupported calibration file version {doc.get('version')!r}"
                )
            timings = {
                name: CodecTiming(*[float(x) for x in coeffs])
                for name, coeffs in doc["timings"].items()
            }
            return cls(timings=timings, kindnum=int(doc["kindnum"]))
        except CalibrationError:
            raise
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise CalibrationError(f"malformed calibration file: {exc}") from exc

    def save(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path) -> "CalibrationTable":
        from pathlib import Path

        return cls.from_json(Path(path).read_text())


def _calibration_column(rng: np.random.Generator, n: int) -> np.ndarray:
    """A representative column: positive, some runs, *fixed* cardinality.

    The cardinality must not grow with n: plane-based codecs cost
    O(n * Kindnum), and fitting t = a*n + b across two sizes is only valid
    when Kindnum is the same at both (``Codec.cost_scale`` then adjusts for
    the target column's cardinality).
    """
    base = rng.integers(0, 48, size=n)
    runs = np.repeat(rng.integers(48, 64, size=max(n // 8, 1)), 8)[:n]
    mixed = np.where(rng.random(n) < 0.5, base, runs)
    return np.ascontiguousarray(mixed, dtype=np.int64)


def _time_call(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _fit_line(n1: int, t1: float, n2: int, t2: float) -> Tuple[float, float]:
    if n2 == n1:
        raise CalibrationError("calibration needs two distinct sizes")
    a = max((t2 - t1) / (n2 - n1), 0.0)
    b = max(t1 - a * n1, 0.0)
    return a, b


def calibrate(
    codecs: Optional[Iterable[Codec]] = None,
    sizes: Sequence[int] = (2048, 16384),
    repeats: int = 3,
    seed: int = 12345,
) -> CalibrationTable:
    """Micro-benchmark codecs and fit their linear time models."""
    if len(sizes) != 2 or sizes[0] >= sizes[1]:
        raise CalibrationError("sizes must be two increasing column lengths")
    if codecs is None:
        codecs = [get_codec(name) for name in all_codec_names()]
    rng = np.random.default_rng(seed)
    columns = {n: _calibration_column(rng, n) for n in sizes}
    timings: Dict[str, CodecTiming] = {}
    for codec in codecs:
        comp_times = {}
        decomp_times = {}
        for n, col in columns.items():
            compressed = codec.compress(col)
            comp_times[n] = _time_call(lambda c=col: codec.compress(c), repeats)
            decomp_times[n] = _time_call(
                lambda cc=compressed: codec.decompress(cc), repeats
            )
        (n1, n2) = sizes
        ca, cb = _fit_line(n1, comp_times[n1], n2, comp_times[n2])
        da, db = _fit_line(n1, decomp_times[n1], n2, decomp_times[n2])
        timings[codec.name] = CodecTiming(ca, cb, da, db)
    kindnum = int(np.unique(columns[sizes[1]]).size)
    return CalibrationTable(timings=timings, kindnum=kindnum)


_DEFAULT_TABLE: Optional[CalibrationTable] = None


def default_calibration() -> CalibrationTable:
    """Process-wide cached calibration of the full codec registry."""
    global _DEFAULT_TABLE
    if _DEFAULT_TABLE is None:
        _DEFAULT_TABLE = calibrate()
    return _DEFAULT_TABLE
