"""Engine core: cost model, selector, client/server pipeline, metrics."""

from .calibration import CalibrationTable, CodecTiming, calibrate, default_calibration
from .client import Client, CodecDemotion, CompressionOutcome
from .cost_model import CostModel, StageEstimate, SystemParams
from .engine import CompressStreamDB, EngineConfig
from .metrics import RunReport
from .pipeline import Pipeline, measure_query_profile
from .profiler import BatchTiming, Profiler, STAGES
from .query_profile import ColumnUse, QueryProfile
from .selector import (
    AdaptiveSelector,
    FixedPlanSelector,
    SelectorBase,
    StaticSelector,
    column_stats_from_batches,
)
from .server import Server, ServerReport

__all__ = [
    "CalibrationTable",
    "CodecTiming",
    "calibrate",
    "default_calibration",
    "Client",
    "CodecDemotion",
    "CompressionOutcome",
    "CostModel",
    "StageEstimate",
    "SystemParams",
    "CompressStreamDB",
    "EngineConfig",
    "RunReport",
    "Pipeline",
    "measure_query_profile",
    "BatchTiming",
    "Profiler",
    "STAGES",
    "ColumnUse",
    "QueryProfile",
    "AdaptiveSelector",
    "FixedPlanSelector",
    "SelectorBase",
    "StaticSelector",
    "column_stats_from_batches",
    "Server",
    "ServerReport",
]
