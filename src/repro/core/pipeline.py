"""End-to-end pipeline: source -> client -> channel -> server (Fig. 4).

The pipeline drives the four cost-model stages per batch.  It maintains a
lookahead buffer over the source so the client's selector can "scan the
next five batches" exactly as Sec. IV-B describes, and it measures the
query profile (baseline memory/compute split for Eq. 8) on the first batch
with a throwaway executor before the run starts.

When the channel is a :class:`~repro.net.faults.FaultyChannel`, batches
additionally travel as real binary frames through
``serialize_batch``/``deserialize_batch`` under the reliable transport
(:mod:`repro.net.transport`): corrupted or dropped frames are
retransmitted with capped exponential backoff in virtual time, and
batches that exhaust their retries are quarantined instead of crashing
the run.  The resulting :class:`~repro.net.faults.FaultReport` rides on
the :class:`RunReport`.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Iterable, Optional

from ..net.channel import Channel, QueuedChannel
from ..net.faults import FaultReport, FaultyChannel
from ..net.transport import ReliabilityConfig, ReliableTransport
from ..operators.base import decoded_column
from ..sql.executor import QueryResult, make_executor
from ..sql.planner import Plan
from ..stream.batch import Batch
from .client import Client
from .cost_model import SystemParams
from .metrics import RunReport
from .profiler import BatchTiming, Profiler
from .server import Server


def measure_query_profile(plan: Plan, batch: Batch, memory_fraction: float) -> None:
    """Fill ``plan.profile`` timings from one uncompressed execution.

    Runs the query on plain values with a fresh (discarded) executor, then
    splits the measured time into the memory-bound share that compression
    scales down (Eq. 8 divides it by r') and the compute share it cannot.
    """
    executor = make_executor(plan)
    columns = {
        name: decoded_column(name, batch.column(name))
        for name in plan.profile.referenced
    }
    t0 = time.perf_counter()
    executor.execute(columns, batch.n)
    elapsed = time.perf_counter() - t0
    plan.profile.mem_seconds = elapsed * memory_fraction
    plan.profile.op_seconds = elapsed * (1.0 - memory_fraction)


class Pipeline:
    """Sequential compress -> transmit -> decompress -> query loop."""

    def __init__(
        self,
        plan: Plan,
        client: Client,
        server: Server,
        channel: Channel,
        params: SystemParams = SystemParams(),
        profile_first_batch: bool = True,
        reliability: Optional[ReliabilityConfig] = None,
    ):
        self.plan = plan
        self.client = client
        self.server = server
        self.channel = channel
        self.params = params
        self.profile_first_batch = profile_first_batch
        self.reliability = reliability

    def run(
        self,
        source: Iterable[Batch],
        max_batches: Optional[int] = None,
        collect_outputs: bool = False,
    ) -> RunReport:
        profiler = Profiler()
        outputs = [] if collect_outputs else None
        iterator = iter(source)
        lookahead: Deque[Batch] = deque()

        def refill() -> None:
            while len(lookahead) < self.client.lookahead:
                try:
                    lookahead.append(next(iterator))
                except StopIteration:
                    break

        refill()
        if self.profile_first_batch and lookahead:
            measure_query_profile(
                self.plan, lookahead[0], self.params.memory_fraction
            )

        # an unreliable channel engages the reliable transport: batches
        # travel as sequence-numbered binary frames with retransmission
        transport: Optional[ReliableTransport] = None
        if isinstance(self.channel, FaultyChannel):
            transport = ReliableTransport(
                self.channel, self.plan.schema, self.reliability
            )

        processed = 0
        arrived_tuples = 0
        timed_link = (
            self.channel.inner
            if isinstance(self.channel, FaultyChannel)
            else self.channel
        )
        use_arrivals = (
            self.params.arrival_rate_tps is not None
            and isinstance(timed_link, QueuedChannel)
        )
        while lookahead and (max_batches is None or processed < max_batches):
            batch = lookahead.popleft()
            refill()
            outcome = self.client.compress_batch(batch, upcoming=tuple(lookahead))
            ready: Optional[float] = None
            if use_arrivals:
                arrived_tuples += batch.n
                ready = arrived_tuples / self.params.arrival_rate_tps + outcome.seconds
            any_lazy = any(
                not name_is_eager(codec_name)
                for codec_name in outcome.choices.values()
            )
            wait_seconds = self.params.t_wait if any_lazy else 0.0
            if transport is not None:
                shipped = transport.send_batch(outcome.batch, ready_time=ready)
                bytes_sent = shipped.bytes_on_wire
                trans_seconds = shipped.seconds
                if shipped.delivered is None:
                    # quarantined: the time and bytes were spent, but the
                    # batch never reached the query — account and move on
                    profiler.record_batch(
                        BatchTiming(
                            wait=wait_seconds,
                            compress=outcome.seconds,
                            trans=trans_seconds,
                        ),
                        tuples=batch.n,
                        bytes_sent=bytes_sent,
                        bytes_uncompressed=batch.uncompressed_nbytes,
                    )
                    processed += 1
                    continue
                report = self.server.process(shipped.delivered)
            elif use_arrivals:
                trans_seconds, _ = self.channel.send(outcome.batch.nbytes, ready)
                bytes_sent = outcome.batch.nbytes
                report = self.server.process(outcome.batch)
            else:
                trans_seconds = self.channel.transmit(outcome.batch.nbytes)
                bytes_sent = outcome.batch.nbytes
                report = self.server.process(outcome.batch)
            timing = BatchTiming(
                wait=wait_seconds,
                compress=outcome.seconds,
                trans=trans_seconds,
                decompress=report.decompress_seconds,
                query=report.query_seconds,
            )
            profiler.record_batch(
                timing,
                tuples=batch.n,
                bytes_sent=bytes_sent,
                bytes_uncompressed=batch.uncompressed_nbytes,
            )
            if outputs is not None:
                outputs.append(report.result)
            processed += 1

        faults: Optional[FaultReport] = None
        if transport is not None:
            faults = transport.report
            faults.injected = self.channel.injected_counts
            faults.codec_demotions = list(self.client.demotions)
        elif self.client.demotions:
            faults = FaultReport(codec_demotions=list(self.client.demotions))

        return RunReport(
            profiler=profiler,
            outputs=QueryResult.merge(outputs) if outputs is not None else None,
            decision_log=list(self.client.decision_log),
            final_choices=self.client.current_choices,
            faults=faults,
        )


def name_is_eager(codec_name: str) -> bool:
    """Whether a codec (by registry name) compresses without batch wait."""
    from ..compression.registry import get_codec

    return not get_codec(codec_name).is_lazy
