"""End-to-end pipeline: source -> client -> channel -> server (Fig. 4).

The pipeline drives the four cost-model stages per batch.  It maintains a
lookahead buffer over the source so the client's selector can "scan the
next five batches" exactly as Sec. IV-B describes, and it measures the
query profile (baseline memory/compute split for Eq. 8) on the first batch
with a throwaway executor before the run starts.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Iterable, Optional

from ..net.channel import Channel, QueuedChannel
from ..operators.base import decoded_column
from ..sql.executor import QueryResult, make_executor
from ..sql.planner import Plan
from ..stream.batch import Batch
from .client import Client
from .cost_model import SystemParams
from .metrics import RunReport
from .profiler import BatchTiming, Profiler
from .server import Server


def measure_query_profile(plan: Plan, batch: Batch, memory_fraction: float) -> None:
    """Fill ``plan.profile`` timings from one uncompressed execution.

    Runs the query on plain values with a fresh (discarded) executor, then
    splits the measured time into the memory-bound share that compression
    scales down (Eq. 8 divides it by r') and the compute share it cannot.
    """
    executor = make_executor(plan)
    columns = {
        name: decoded_column(name, batch.column(name))
        for name in plan.profile.referenced
    }
    t0 = time.perf_counter()
    executor.execute(columns, batch.n)
    elapsed = time.perf_counter() - t0
    plan.profile.mem_seconds = elapsed * memory_fraction
    plan.profile.op_seconds = elapsed * (1.0 - memory_fraction)


class Pipeline:
    """Sequential compress -> transmit -> decompress -> query loop."""

    def __init__(
        self,
        plan: Plan,
        client: Client,
        server: Server,
        channel: Channel,
        params: SystemParams = SystemParams(),
        profile_first_batch: bool = True,
    ):
        self.plan = plan
        self.client = client
        self.server = server
        self.channel = channel
        self.params = params
        self.profile_first_batch = profile_first_batch

    def run(
        self,
        source: Iterable[Batch],
        max_batches: Optional[int] = None,
        collect_outputs: bool = False,
    ) -> RunReport:
        profiler = Profiler()
        outputs = [] if collect_outputs else None
        iterator = iter(source)
        lookahead: Deque[Batch] = deque()

        def refill() -> None:
            while len(lookahead) < self.client.lookahead:
                try:
                    lookahead.append(next(iterator))
                except StopIteration:
                    break

        refill()
        if self.profile_first_batch and lookahead:
            measure_query_profile(
                self.plan, lookahead[0], self.params.memory_fraction
            )

        processed = 0
        arrived_tuples = 0
        use_arrivals = (
            self.params.arrival_rate_tps is not None
            and isinstance(self.channel, QueuedChannel)
        )
        while lookahead and (max_batches is None or processed < max_batches):
            batch = lookahead.popleft()
            refill()
            outcome = self.client.compress_batch(batch, upcoming=tuple(lookahead))
            if use_arrivals:
                arrived_tuples += batch.n
                ready = arrived_tuples / self.params.arrival_rate_tps + outcome.seconds
                trans_seconds, _ = self.channel.send(outcome.batch.nbytes, ready)
            else:
                trans_seconds = self.channel.transmit(outcome.batch.nbytes)
            report = self.server.process(outcome.batch)
            any_lazy = any(
                not name_is_eager(codec_name)
                for codec_name in outcome.choices.values()
            )
            timing = BatchTiming(
                wait=self.params.t_wait if any_lazy else 0.0,
                compress=outcome.seconds,
                trans=trans_seconds,
                decompress=report.decompress_seconds,
                query=report.query_seconds,
            )
            profiler.record_batch(
                timing,
                tuples=batch.n,
                bytes_sent=outcome.batch.nbytes,
                bytes_uncompressed=batch.uncompressed_nbytes,
            )
            if outputs is not None:
                outputs.append(report.result)
            processed += 1

        return RunReport(
            profiler=profiler,
            outputs=QueryResult.merge(outputs) if outputs is not None else None,
            decision_log=list(self.client.decision_log),
            final_choices=self.client.current_choices,
        )


def name_is_eager(codec_name: str) -> bool:
    """Whether a codec (by registry name) compresses without batch wait."""
    from ..compression.registry import get_codec

    return not get_codec(codec_name).is_lazy
