"""The CompressStreamDB client: selects codecs and compresses batches.

The client preloads the next few batches (the pipeline peeks ahead in the
source, matching "scans the next five batches" of Sec. IV-B), re-selects
codecs every ``redecide_every`` batches through its selector, and
compresses each column with its chosen codec.  If a chosen codec turns out
inapplicable to the actual data of a batch (e.g. Elias codes meeting a
negative value), the client falls back to identity for that column — the
stream must never stall.

Graceful degradation: a codec that keeps failing on live data (raising
:class:`CodecError`/:class:`CodecNotApplicable` at compression time on
``demote_after`` batches) is *demoted* — removed from the selector's pool
for that column for the rest of the run, with the incident recorded as a
:class:`CodecDemotion`.  The per-batch fallback is always identity, so a
single misbehaving codec degrades compression ratio, never correctness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..compression.base import Codec, CompressedColumn
from ..compression.registry import get_codec
from ..errors import CodecError, CodecNotApplicable
from ..stream.batch import Batch, CompressedBatch
from ..stream.schema import Schema
from .query_profile import QueryProfile
from .selector import SelectorBase, column_stats_from_batches


@dataclass
class CompressionOutcome:
    """Result of compressing one batch on the client."""

    batch: CompressedBatch
    seconds: float
    reselected: bool
    choices: Dict[str, str]


@dataclass(frozen=True)
class CodecDemotion:
    """One codec removed from a column's pool after repeated failures."""

    batch_index: int
    column: str
    codec: str
    failures: int
    reason: str


class Client:
    """Compression side of the engine (Fig. 4, left)."""

    def __init__(
        self,
        schema: Schema,
        selector: SelectorBase,
        profile: QueryProfile,
        redecide_every: int = 16,
        lookahead: int = 5,
        hybrid_threshold: int = 0,
        demote_after: int = 3,
    ):
        if redecide_every <= 0:
            # lint: taxonomy-flow constructor precondition, programmer error not wire data
            raise ValueError("redecide_every must be positive")
        if lookahead <= 0:
            # lint: taxonomy-flow constructor precondition, programmer error not wire data
            raise ValueError("lookahead must be positive")
        if hybrid_threshold < 0:
            # lint: taxonomy-flow constructor precondition, programmer error not wire data
            raise ValueError("hybrid_threshold cannot be negative")
        if demote_after <= 0:
            # lint: taxonomy-flow constructor precondition, programmer error not wire data
            raise ValueError("demote_after must be positive")
        self.schema = schema
        self.selector = selector
        self.profile = profile
        self.redecide_every = redecide_every
        self.lookahead = lookahead
        #: Sec. VI hybrid mode: batches at or below this size skip
        #: compression entirely (single-tuple / small-scale scenarios
        #: should not wait for batch-level compression to pay off)
        self.hybrid_threshold = hybrid_threshold
        #: compression failures on live data before a codec is demoted
        #: from a column's pool for the rest of the run
        self.demote_after = demote_after
        self._choices: Optional[Dict[str, Codec]] = None
        self._batch_index = 0
        self._identity = get_codec("identity")
        #: per-column codec decision history, one entry per re-decision
        self.decision_log: List[Dict[str, str]] = []
        #: (column, codec) -> live-data compression failures so far
        self._failures: Dict[tuple, int] = {}
        #: column -> codec names banned from selection for that column
        self._demoted: Dict[str, Set[str]] = {}
        #: demotion incidents, in the order they happened
        self.demotions: List[CodecDemotion] = []
        #: codec names banned from *every* column while the serving layer
        #: holds this client in degraded mode (None = unrestricted)
        self._restricted: Optional[Set[str]] = None

    def compress_batch(
        self, batch: Batch, upcoming: Sequence[Batch] = ()
    ) -> CompressionOutcome:
        """Compress one batch; ``upcoming`` is the lookahead sample."""
        if batch.n <= self.hybrid_threshold:
            return self._compress_uncompressed(batch)
        reselected = False
        if self._choices is None or self._batch_index % self.redecide_every == 0:
            sample = [batch, *upcoming][: self.lookahead]
            stats = column_stats_from_batches(sample, self.schema)
            excluded = self._demoted
            if self._restricted:
                excluded = {
                    f.name: self._restricted | self._demoted.get(f.name, set())
                    for f in self.schema
                }
            self._choices = self.selector.select(
                stats, self.profile, batch.n, excluded=excluded
            )
            self.decision_log.append(
                {name: codec.name for name, codec in self._choices.items()}
            )
            reselected = True
        self._batch_index += 1

        t0 = time.perf_counter()
        columns: Dict[str, CompressedColumn] = {}
        for f in self.schema:
            codec = self._choices[f.name]
            values = batch.column(f.name)
            try:
                cc = codec.compress(values)
            except (CodecNotApplicable, CodecError) as exc:
                self._record_failure(f.name, codec, exc)
                cc = self._identity.compress(values)
            cc.source_size_c = f.size
            if cc.codec == "identity":
                # identity ships the field at its declared wire width
                cc.nbytes = batch.n * f.size
            columns[f.name] = cc
        seconds = time.perf_counter() - t0
        compressed = CompressedBatch(schema=self.schema, n=batch.n, columns=columns)
        return CompressionOutcome(
            batch=compressed,
            seconds=seconds,
            reselected=reselected,
            choices=dict(compressed.choices),
        )

    def _record_failure(self, column: str, codec: Codec, exc: Exception) -> None:
        """Count a live-data compression failure; demote at the threshold.

        Until the threshold the codec stays selected (the failure may be a
        one-off regime blip); once demoted it is excluded from every later
        re-decision for this column and the current choice drops to
        identity immediately.
        """
        if codec.name == "identity":
            return
        key = (column, codec.name)
        self._failures[key] = self._failures.get(key, 0) + 1
        if self._failures[key] < self.demote_after:
            return
        banned = self._demoted.setdefault(column, set())
        if codec.name in banned:
            return
        banned.add(codec.name)
        self.demotions.append(
            CodecDemotion(
                batch_index=self._batch_index - 1,
                column=column,
                codec=codec.name,
                failures=self._failures[key],
                reason=f"{type(exc).__name__}: {exc}",
            )
        )
        if self._choices is not None:
            self._choices[column] = self._identity

    def restrict_pool(self, allowed: Optional[Set[str]]) -> None:
        """Confine selection to ``allowed`` codec names on every column.

        The serving layer's graceful-degradation hook: a tripped circuit
        breaker restricts a tenant to cheap always-safe codecs, and a
        recovered breaker lifts the restriction with ``None``.  Permanent
        per-column demotions are unaffected and stay banned either way.
        The next batch re-selects immediately.
        """
        if allowed is None:
            self._restricted = None
        else:
            if "identity" not in allowed:
                raise ValueError("a restricted pool must keep identity available")
            from ..compression.registry import all_codec_names

            unknown = set(allowed) - set(all_codec_names())
            if unknown:
                raise ValueError(f"unknown codecs in restricted pool: {unknown}")
            self._restricted = set(all_codec_names()) - set(allowed)
        self._choices = None

    @property
    def demoted_codecs(self) -> Dict[str, Set[str]]:
        """Codecs banned per column after repeated live-data failures."""
        return {name: set(codecs) for name, codecs in self._demoted.items()}

    def _compress_uncompressed(self, batch: Batch) -> CompressionOutcome:
        """Hybrid path: ship the batch uncompressed without waiting."""
        t0 = time.perf_counter()
        columns: Dict[str, CompressedColumn] = {}
        for f in self.schema:
            cc = self._identity.compress(batch.column(f.name))
            cc.source_size_c = f.size
            cc.nbytes = batch.n * f.size
            columns[f.name] = cc
        seconds = time.perf_counter() - t0
        self._batch_index += 1
        compressed = CompressedBatch(schema=self.schema, n=batch.n, columns=columns)
        return CompressionOutcome(
            batch=compressed,
            seconds=seconds,
            reselected=False,
            choices=dict(compressed.choices),
        )

    @property
    def current_choices(self) -> Dict[str, str]:
        if self._choices is None:
            return {}
        return {name: codec.name for name, codec in self._choices.items()}
