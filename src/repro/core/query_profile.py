"""Per-column query requirements shared by the planner and the cost model.

The planner derives, for every referenced column, which direct-processing
capability the query needs; the cost model then knows whether a candidate
codec can serve the query directly (query memory traffic divided by r',
Eq. 8) or must be decoded first (r' = 1, plus decode cost); the server uses
the same structure to materialize columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from ..compression.base import Codec


@dataclass
class ColumnUse:
    """How a query touches one column."""

    name: str
    #: Direct-processing capabilities required to avoid decoding.
    caps: FrozenSet[str] = frozenset()
    #: The column's values (not just codes) are needed, e.g. arithmetic
    #: projections: forces a decode regardless of capabilities.
    needs_values: bool = False
    #: The executor indexes the column's code array row-by-row (group
    #: keys, distinct, last-row outputs).  Predicate-only columns stay
    #: False, which lets the server serve them from bitmap planes without
    #: ever materializing a per-row code array.
    positional: bool = False

    def merge(self, other: "ColumnUse") -> "ColumnUse":
        if other.name != self.name:
            raise ValueError("cannot merge uses of different columns")
        return ColumnUse(
            name=self.name,
            caps=self.caps | other.caps,
            needs_values=self.needs_values or other.needs_values,
            positional=self.positional or other.positional,
        )

    def served_directly_by(self, codec: Codec) -> bool:
        """Whether this use runs on codes without decoding under ``codec``."""
        if codec.needs_decompression:
            return False
        if self.needs_values:
            # Affine codecs decode "for free" arithmetically; anything else
            # requires an explicit value materialization.
            return "affine" in codec.capabilities
        return self.caps <= codec.capabilities


@dataclass
class QueryProfile:
    """Everything the cost model needs to price the query stage (Eq. 8).

    ``mem_seconds``/``op_seconds`` are the uncompressed baseline's
    memory-bound and compute-bound query time per batch, measured by the
    server during warm-up (the paper obtains them from its profiler).
    ``column_uses`` covers only columns the query references; untouched
    columns contribute no query time but still ship over the network.
    """

    column_uses: Dict[str, ColumnUse] = field(default_factory=dict)
    mem_seconds: float = 0.0
    op_seconds: float = 0.0

    def use_of(self, name: str) -> Optional[ColumnUse]:
        return self.column_uses.get(name)

    @property
    def referenced(self) -> FrozenSet[str]:
        return frozenset(self.column_uses)
