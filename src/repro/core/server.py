"""The CompressStreamDB server: query processing on compressed batches.

Per batch the server materializes each query-referenced column either
*directly* (compressed codes, when the codec serves every use of the
column — Sec. IV-B "query without decompression") or *decoded* (the β = 1
special case, or a query-forced decode).  Decode time is booked as
decompression, direct materialization as part of the query scan, matching
the byte-granularity read model of Eq. 8.

Two structural escapes narrow the β = 1 decode set:

* run-structured payloads (RLE) are handed to the executor as
  (value, length) pairs; operators work at run granularity and per-row
  expansion happens lazily, only if an operator indexes rows;
* plane payloads (Bitmap, PLWAH) serve equality-only predicate columns
  as a :class:`~repro.compression.base.PlaneView` — one unpacked plane
  per literal, never a per-row array.

Both are booked as direct columns: no decompression ran.  When the
optimizer's morph rule decided a column should be *recompressed* into a
different layout (run payload -> bit planes for an equality-heavy
predicate), the server converts it before serving; conversion cost is
booked as decompression and the column is reported as morphed.  A small
:class:`~repro.core.decode_cache.DecodeCache` additionally interns
repeated metadata (dictionaries), memoizes whole-column decodes for
byte-identical columns across batches, and memoizes the morphed
intermediates so repeated payloads convert once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..compression.base import CAP_EQUALITY, Codec, CompressedColumn
from ..compression.registry import get_codec
from ..core.query_profile import ColumnUse
from ..operators.base import ExecColumn, decoded_column
from ..sql.executor import QueryResult, make_executor
from ..sql.planner import Plan
from ..stream.batch import CompressedBatch
from .decode_cache import DecodeCache


@dataclass
class ServerReport:
    """Outcome of processing one compressed batch."""

    result: QueryResult
    decompress_seconds: float
    query_seconds: float
    decoded_columns: Tuple[str, ...]
    #: referenced columns served on compressed codes (the direct path);
    #: with ``decoded_columns`` and ``morphed_columns`` this partitions
    #: the referenced set
    direct_columns: Tuple[str, ...] = ()
    #: columns the optimizer's morph decisions recompressed into another
    #: layout before serving (mid-pipeline format morphing)
    morphed_columns: Tuple[str, ...] = ()
    #: morph-store cache activity while processing this batch
    morph_cache_hits: int = 0
    morph_cache_misses: int = 0
    #: optimizer decisions carried by the plan (empty when the plan never
    #: went through the optimizer, or the chooser fell back)
    optimizer_rules: Tuple[str, ...] = ()
    plan_digest: str = ""
    estimated_cost: float = 0.0
    baseline_cost: float = 0.0


class Server:
    """Query side of the engine (Fig. 4, right).

    ``force_decode=True`` disables direct processing entirely: every
    referenced column is decompressed before querying, the conventional
    decompress-then-query design the paper argues against.  The ablation
    benchmark uses it to isolate the benefit of querying without
    decompression from the benefit of transmitting fewer bytes.
    """

    def __init__(
        self,
        plan: Plan,
        force_decode: bool = False,
        cache: Optional[DecodeCache] = None,
        tenant: str = "",
    ):
        self.plan = plan
        self.profile = plan.profile
        self.executor = make_executor(plan)
        self.force_decode = force_decode
        self.cache = DecodeCache() if cache is None else cache
        #: owner charged for this server's cache entries when the cache is
        #: shared across tenants (the serving layer's per-tenant quota)
        self.tenant = tenant
        opt = getattr(plan, "opt", None)
        #: morph decisions by column, from the optimizer's FormatMorph rule
        self._morphs = {
            m.column: m for m in (opt.morphs if opt is not None else ())
        }

    def process_frame(self, frame: bytes) -> ServerReport:
        """Decode one binary wire frame and process it.

        The client-server deployment path: validates the frame (magic,
        version, CRC, schema) and raises
        :class:`~repro.wire.format.WireFormatError` on corruption instead
        of ever decoding wrong answers.
        """
        from ..wire.format import deserialize_batch

        return self.process(deserialize_batch(frame, self.plan.schema))

    def process(self, batch: CompressedBatch) -> ServerReport:
        decompress_seconds = 0.0
        decoded: list = []
        direct_cols: list = []
        morphed_cols: list = []
        columns: Dict[str, ExecColumn] = {}
        t_query = 0.0
        hits0 = self.cache.morph_hits
        misses0 = self.cache.morph_misses
        for name in sorted(self.profile.referenced):
            cc = batch.columns[name]
            codec = get_codec(cc.codec)
            self.cache.intern_meta(cc, tenant=self.tenant)
            use = self.profile.use_of(name)
            direct = (
                not self.force_decode
                and use is not None
                and use.served_directly_by(codec)
            )
            if direct:
                # direct path: widening the packed payload into the kernel
                # view is part of the byte-proportional scan (query time)
                t0 = time.perf_counter()
                columns[name] = ExecColumn(name, codec.direct_codes(cc), codec, cc)
                t_query += time.perf_counter() - t0
                direct_cols.append(name)
                continue
            if not self.force_decode and use is not None:
                # the morph check precedes the structural path: a run
                # payload would otherwise always serve as runs, and the
                # optimizer decided planes are cheaper for this use
                if name in self._morphs:
                    t0 = time.perf_counter()
                    served = self._morphed_column(name, codec, cc, use)
                    if served is not None:
                        # conversion decodes the source payload, so it is
                        # booked with decompression, not the query scan
                        decompress_seconds += time.perf_counter() - t0
                        columns[name] = served
                        morphed_cols.append(name)
                        continue
                t0 = time.perf_counter()
                served = self._structural_column(name, codec, cc, use)
                if served is not None:
                    t_query += time.perf_counter() - t0
                    columns[name] = served
                    direct_cols.append(name)
                    continue
            t0 = time.perf_counter()
            values = self.cache.decompress(codec, cc, tenant=self.tenant)
            decompress_seconds += time.perf_counter() - t0
            columns[name] = decoded_column(name, values)
            decoded.append(name)
        t0 = time.perf_counter()
        result = self.executor.execute(columns, batch.n)
        t_query += time.perf_counter() - t0
        opt = getattr(self.plan, "opt", None)
        return ServerReport(
            result=result,
            decompress_seconds=decompress_seconds,
            query_seconds=t_query,
            decoded_columns=tuple(decoded),
            direct_columns=tuple(direct_cols),
            morphed_columns=tuple(morphed_cols),
            morph_cache_hits=self.cache.morph_hits - hits0,
            morph_cache_misses=self.cache.morph_misses - misses0,
            optimizer_rules=opt.rules_fired if opt is not None else (),
            plan_digest=opt.plan_digest if opt is not None else "",
            estimated_cost=opt.estimated_cost if opt is not None else 0.0,
            baseline_cost=opt.baseline_cost if opt is not None else 0.0,
        )

    def _morphed_column(
        self, name: str, codec: Codec, cc: CompressedColumn, use: ColumnUse
    ) -> Optional[ExecColumn]:
        """Serve a column through its optimizer-decided morph, if safe.

        The plan's morph decision was priced for the equality-only plane
        path, so the runtime re-checks the same gate the structural plane
        path uses and verifies the batch actually arrived in the codec the
        decision assumed; any mismatch falls through to the naive paths.
        """
        decision = self._morphs[name]
        if cc.codec != decision.from_codec:
            return None
        if (
            use.caps <= frozenset({CAP_EQUALITY})
            and not use.needs_values
            and not use.positional
        ):
            target = get_codec(decision.to_codec)
            morphed = self.cache.morph(codec, cc, target, tenant=self.tenant)
            planes = target.plane_view(morphed)
            if planes is not None:
                return ExecColumn(name, planes=planes)
        return None

    def _structural_column(
        self, name: str, codec: Codec, cc: CompressedColumn, use: ColumnUse
    ) -> Optional[ExecColumn]:
        """Serve a β = 1 column from its compressed structure, if possible.

        Runs carry full decoded-value semantics, so they serve any use;
        planes answer only equality predicates, so they are gated to
        predicate-only columns (no value output, no row-wise indexing).
        """
        runs = codec.run_view(cc)
        if runs is not None:
            return ExecColumn(name, runs=runs)
        if (
            use.caps <= frozenset({CAP_EQUALITY})
            and not use.needs_values
            and not use.positional
        ):
            planes = codec.plane_view(cc)
            if planes is not None:
                return ExecColumn(name, planes=planes)
        return None
