"""The CompressStreamDB server: query processing on compressed batches.

Per batch the server materializes each query-referenced column either
*directly* (compressed codes, when the codec serves every use of the
column — Sec. IV-B "query without decompression") or *decoded* (the β = 1
special case, or a query-forced decode).  Decode time is booked as
decompression, direct materialization as part of the query scan, matching
the byte-granularity read model of Eq. 8.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Tuple

from ..compression.registry import get_codec
from ..operators.base import ExecColumn, decoded_column
from ..sql.executor import QueryResult, make_executor
from ..sql.planner import Plan
from ..stream.batch import CompressedBatch


@dataclass
class ServerReport:
    """Outcome of processing one compressed batch."""

    result: QueryResult
    decompress_seconds: float
    query_seconds: float
    decoded_columns: Tuple[str, ...]
    #: referenced columns served on compressed codes (the direct path);
    #: together with ``decoded_columns`` this partitions the referenced set
    direct_columns: Tuple[str, ...] = ()


class Server:
    """Query side of the engine (Fig. 4, right).

    ``force_decode=True`` disables direct processing entirely: every
    referenced column is decompressed before querying, the conventional
    decompress-then-query design the paper argues against.  The ablation
    benchmark uses it to isolate the benefit of querying without
    decompression from the benefit of transmitting fewer bytes.
    """

    def __init__(self, plan: Plan, force_decode: bool = False):
        self.plan = plan
        self.profile = plan.profile
        self.executor = make_executor(plan)
        self.force_decode = force_decode

    def process_frame(self, frame: bytes) -> ServerReport:
        """Decode one binary wire frame and process it.

        The client-server deployment path: validates the frame (magic,
        version, CRC, schema) and raises
        :class:`~repro.wire.format.WireFormatError` on corruption instead
        of ever decoding wrong answers.
        """
        from ..wire.format import deserialize_batch

        return self.process(deserialize_batch(frame, self.plan.schema))

    def process(self, batch: CompressedBatch) -> ServerReport:
        decompress_seconds = 0.0
        decoded: list = []
        direct_cols: list = []
        columns: Dict[str, ExecColumn] = {}
        t_query = 0.0
        for name in sorted(self.profile.referenced):
            cc = batch.columns[name]
            codec = get_codec(cc.codec)
            use = self.profile.use_of(name)
            direct = (
                not self.force_decode
                and use is not None
                and use.served_directly_by(codec)
            )
            if direct:
                # direct path: widening the packed payload into the kernel
                # view is part of the byte-proportional scan (query time)
                t0 = time.perf_counter()
                columns[name] = ExecColumn(name, codec.direct_codes(cc), codec, cc)
                t_query += time.perf_counter() - t0
                direct_cols.append(name)
            else:
                t0 = time.perf_counter()
                values = codec.decompress(cc)
                decompress_seconds += time.perf_counter() - t0
                columns[name] = decoded_column(name, values)
                decoded.append(name)
        t0 = time.perf_counter()
        result = self.executor.execute(columns, batch.n)
        t_query += time.perf_counter() - t0
        return ServerReport(
            result=result,
            decompress_seconds=decompress_seconds,
            query_seconds=t_query,
            decoded_columns=tuple(decoded),
            direct_columns=tuple(direct_cols),
        )
