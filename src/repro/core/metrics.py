"""Run-level metrics: throughput, latency, space savings.

Definitions follow Sec. VII: *throughput* is tuples processed per second
of total pipeline time; *latency* is "the time from data input to the
query result output", i.e. the per-batch sum of wait + compress + trans +
decompress + query; *space saving* is 1 - transmitted/uncompressed bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..net.faults import FaultReport
from ..sql.executor import QueryResult
from .profiler import Profiler


@dataclass
class RunReport:
    """Everything a pipeline run produced."""

    profiler: Profiler
    outputs: Optional[QueryResult] = None
    #: codec decisions, one dict per re-decision event
    decision_log: List[Dict[str, str]] = field(default_factory=list)
    #: codec assignment in force at the end of the run
    final_choices: Dict[str, str] = field(default_factory=dict)
    #: fault/recovery accounting; None when the run used a lossless
    #: channel without the reliable transport
    faults: Optional[FaultReport] = None

    # ----- headline metrics ------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return self.profiler.total_seconds

    @property
    def tuples(self) -> int:
        return self.profiler.tuples

    @property
    def throughput(self) -> float:
        """Tuples per second of total pipeline time."""
        if self.total_seconds <= 0:
            return 0.0
        return self.profiler.tuples / self.total_seconds

    @property
    def avg_latency(self) -> float:
        """Mean per-batch latency in seconds."""
        if self.profiler.batches == 0:
            return 0.0
        return self.total_seconds / self.profiler.batches

    @property
    def delivered_tuples(self) -> int:
        """Tuples that reached the server intact (arrived - quarantined)."""
        lost = self.faults.quarantined_tuples if self.faults else 0
        return self.profiler.tuples - lost

    @property
    def goodput(self) -> float:
        """Delivered tuples per second of total pipeline time.

        Equal to :attr:`throughput` on a reliable link; under faults,
        quarantined batches count toward time but not toward goodput.
        """
        if self.total_seconds <= 0:
            return 0.0
        return self.delivered_tuples / self.total_seconds

    @property
    def compression_ratio(self) -> float:
        """Whole-run r = uncompressed bytes / transmitted bytes."""
        if self.profiler.bytes_sent == 0:
            return float("inf")
        return self.profiler.bytes_uncompressed / self.profiler.bytes_sent

    @property
    def space_saving(self) -> float:
        """1 - transmitted / uncompressed (the paper's "saves 66.8% space")."""
        if self.profiler.bytes_uncompressed == 0:
            return 0.0
        return 1.0 - self.profiler.bytes_sent / self.profiler.bytes_uncompressed

    def breakdown(self) -> Dict[str, float]:
        return self.profiler.breakdown()

    def stage_seconds(self) -> Dict[str, float]:
        return dict(self.profiler.seconds)

    def summary(self) -> str:
        """One-line human-readable digest."""
        text = (
            f"tuples={self.tuples} batches={self.profiler.batches} "
            f"throughput={self.throughput:,.0f} tup/s "
            f"latency={self.avg_latency * 1e3:.2f} ms/batch "
            f"r={self.compression_ratio:.2f} "
            f"space_saving={self.space_saving * 100:.1f}%"
        )
        if self.faults is not None and (
            self.faults.detected or self.faults.codec_demotions
        ):
            text += (
                f" recovered={self.faults.recovered}"
                f" quarantined={self.faults.quarantined}"
            )
        return text
