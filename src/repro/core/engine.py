"""The CompressStreamDB engine facade — the library's main entry point.

Example
-------
>>> from repro import CompressStreamDB, EngineConfig
>>> from repro.datasets import smart_grid
>>> engine = CompressStreamDB(
...     catalog={"SmartGridStr": smart_grid.SCHEMA},
...     query="select timestamp, avg(value) as globalAvgLoad "
...           "from SmartGridStr [range 1024 slide 1024]",
...     config=EngineConfig(mode="adaptive", bandwidth_mbps=500),
... )
>>> report = engine.run(smart_grid.source(batch_size=4096, batches=8))
>>> report.throughput > 0
True

Modes
-----
``adaptive``
    the paper's CompressStreamDB: per-column cost-model selection;
``adaptive+plwah``
    the Sec. VII-D extension pool including PLWAH;
``adaptive+cascades``
    the Table I pool plus the cascaded codec families (DICT→RLE,
    DELTA→NS, BD→NSV, DICT→BITMAP; see ``repro.compression.cascade``);
``baseline``
    compression turned off (identity codec) — the comparison baseline;
``static:<codec>``
    a single fixed codec for every column, e.g. ``static:bd`` reproduces
    the TerseCades comparator.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Union

from ..compression.registry import (
    CASCADE_POOL,
    all_codec_names,
    default_pool,
    get_codec,
)
from ..errors import EngineError
from ..net.channel import Channel, QueuedChannel
from ..net.faults import FaultProfile, FaultyChannel
from ..net.transport import ReliabilityConfig
from ..optimizer.optimizer import plan_for_engine
from ..sql.planner import Plan, Planner
from ..stream.batch import Batch
from ..stream.schema import Schema
from .calibration import CalibrationTable, default_calibration
from .client import Client
from .cost_model import CostModel, SystemParams
from .metrics import RunReport
from .pipeline import Pipeline
from .selector import AdaptiveSelector, SelectorBase, StaticSelector
from .server import Server


@dataclass(frozen=True)
class EngineConfig:
    """Engine-level knobs; see module docstring for ``mode`` values."""

    mode: str = "adaptive"
    bandwidth_mbps: Optional[float] = 500.0
    latency_s: float = 0.0
    redecide_every: int = 16
    lookahead: int = 5
    params: SystemParams = field(default_factory=SystemParams)
    calibration: Optional[CalibrationTable] = None
    #: restrict the adaptive pool to these codec names (None = Table I pool)
    pool: Optional[List[str]] = None
    #: selector hysteresis: a challenger codec must beat the incumbent by
    #: this relative margin to replace it (0 = always take the argmin)
    switch_margin: float = 0.0
    #: ablation switch: decompress every column before querying instead of
    #: processing compressed codes directly (the design the paper rejects)
    force_decode: bool = False
    #: custom channel constructor (e.g. a MultiHopChannel for the Sec. IV-A
    #: multi-layer deployment); overrides bandwidth_mbps/latency_s
    channel_factory: Optional[Callable[[], Channel]] = None
    #: hybrid mode (Sec. VI): batches at or below this many tuples bypass
    #: compression entirely and are processed as uncompressed singles
    hybrid_threshold: int = 0
    #: measure the query profile (Eq. 8 inputs) on the first batch.  True
    #: matches the paper's runtime profiler; False makes selection depend
    #: only on the calibration table — fully deterministic across runs
    profile_query: bool = True
    #: inject link faults (drops, bit-flips, truncations, duplicates,
    #: stalls) at these seeded rates; engages the reliable transport so
    #: batches ship as retransmittable binary frames
    fault_profile: Optional[FaultProfile] = None
    #: retry/backoff knobs of the recovery protocol; setting this alone
    #: (without faults) still routes batches through the framed transport
    reliability: Optional[ReliabilityConfig] = None
    #: live-data compression failures before a codec is demoted from a
    #: column's pool (graceful degradation)
    demote_after: int = 3
    #: run the query through the rule-based optimizer
    #: (:mod:`repro.optimizer`) before execution.  False is the escape
    #: hatch: plans execute exactly as the planner emitted them
    optimize: bool = True


class CompressStreamDB:
    """Compression-based stream processing engine (the paper's system)."""

    def __init__(
        self,
        catalog: Union[Dict[str, Schema], Schema],
        query: str,
        config: EngineConfig = EngineConfig(),
        stream_name: str = "S",
    ):
        if isinstance(catalog, Schema):
            catalog = {stream_name: catalog}
        self.catalog = catalog
        self.query = query
        self.config = config
        self._validate_mode(config.mode)
        # plan once: the plan is immutable; executors are per-run
        self._base_plan: Plan = self._plan()

    def _plan(self) -> Plan:
        if not self.config.optimize:
            return Planner(self.catalog).plan_text(self.query)
        # static modes pin one codec on every column — tell the optimizer
        # so rules needing run/plane evidence can price the representation
        hint = ""
        if self.config.mode.startswith("static:"):
            hint = self.config.mode.split(":", 1)[1]
        return plan_for_engine(
            self.catalog,
            self.query,
            optimize=True,
            codec_hint=hint,
            calibration=self.config.calibration,
        )

    @staticmethod
    def _validate_mode(mode: str) -> None:
        if mode in ("adaptive", "adaptive+plwah", "adaptive+cascades", "baseline"):
            return
        if mode.startswith("static:"):
            name = mode.split(":", 1)[1]
            if name not in all_codec_names():
                raise EngineError(f"unknown codec in mode {mode!r}")
            return
        raise EngineError(
            f"unknown mode {mode!r}; expected adaptive, adaptive+plwah, "
            "adaptive+cascades, baseline, or static:<codec>"
        )

    # ----- wiring ------------------------------------------------------

    def _make_channel(self) -> Channel:
        if self.config.channel_factory is not None:
            channel = self.config.channel_factory()
        else:
            # an arrival-rate model needs the queueing link (Fig. 10 pauses)
            cls = (
                QueuedChannel
                if self.config.params.arrival_rate_tps is not None
                else Channel
            )
            channel = cls(
                bandwidth_mbps=self.config.bandwidth_mbps,
                latency_s=self.config.latency_s,
            )
        wants_transport = (
            self.config.fault_profile is not None
            or self.config.reliability is not None
        )
        if wants_transport and not isinstance(channel, FaultyChannel):
            channel = FaultyChannel(channel, profile=self.config.fault_profile)
        return channel

    def _make_selector(self, channel: Channel) -> SelectorBase:
        mode = self.config.mode
        if mode == "baseline":
            return StaticSelector("identity")
        if mode.startswith("static:"):
            return StaticSelector(mode.split(":", 1)[1])
        table = self.config.calibration or default_calibration()
        cost_model = CostModel(table, self.config.params, channel)
        if self.config.pool is not None:
            pool = [get_codec(name) for name in self.config.pool]
        else:
            pool = default_pool(
                include_plwah=(mode == "adaptive+plwah"),
                extensions=CASCADE_POOL if mode == "adaptive+cascades" else (),
            )
        return AdaptiveSelector(
            cost_model, pool, switch_margin=self.config.switch_margin
        )

    def make_pipeline(self) -> Pipeline:
        """A fresh pipeline (fresh executors, fresh channel counters)."""
        plan = self._base_plan
        channel = self._make_channel()
        selector = self._make_selector(channel)
        client = Client(
            schema=plan.schema,
            selector=selector,
            profile=plan.profile,
            redecide_every=self.config.redecide_every,
            lookahead=self.config.lookahead,
            hybrid_threshold=self.config.hybrid_threshold,
            demote_after=self.config.demote_after,
        )
        server = Server(plan, force_decode=self.config.force_decode)
        return Pipeline(
            plan=plan,
            client=client,
            server=server,
            channel=channel,
            params=self.config.params,
            profile_first_batch=self.config.profile_query,
            reliability=self.config.reliability,
        )

    # ----- public API ------------------------------------------------------

    @property
    def plan(self) -> Plan:
        return self._base_plan

    def run(
        self,
        source: Iterable[Batch],
        max_batches: Optional[int] = None,
        collect_outputs: bool = False,
    ) -> RunReport:
        """Process a stream end-to-end and return the run report."""
        pipeline = self.make_pipeline()
        return pipeline.run(
            source, max_batches=max_batches, collect_outputs=collect_outputs
        )

    def with_mode(self, mode: str) -> "CompressStreamDB":
        """A copy of this engine in another processing mode."""
        return CompressStreamDB(
            catalog=self.catalog,
            query=self.query,
            config=replace(self.config, mode=mode),
        )
