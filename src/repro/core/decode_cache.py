"""Per-column decode cache: reuse repeated dictionary/metadata segments.

Stream batches frequently resend identical metadata — a slowly-changing
DICT/Bitmap dictionary, an all-equal column's payload — and the server
used to rebuild the same arrays batch after batch.  The cache interns
metadata arrays by content digest (so one shared, read-only array backs
every batch that carries it), memoizes whole-column decompression for
byte-identical compressed columns, and memoizes mid-pipeline format
morphs (recompressing a column under a different codec for the server's
plane-serving path).

All stores are small LRUs: stream metadata has low cardinality, so a
handful of entries capture the repetition without growing with the stream.

Capacity is bounded three ways, all with deterministic eviction order:

* ``max_entries`` — the original per-store LRU entry bound;
* ``max_bytes`` — a hard bound on the summed cached bytes across *all*
  stores; exceeding it evicts globally oldest entries first (by a
  monotonic insertion sequence, never by dict-iteration accidents);
* ``tenant_quota_bytes`` — the multi-tenant fairness bound: an insert
  that pushes one tenant over its quota evicts *that tenant's own*
  oldest entries, so a hot tenant with high-cardinality metadata cannot
  evict the world.

An array too large for the applicable bound is returned uncached.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..compression.base import Codec, CompressedColumn

#: Metadata keys that hold arrays worth interning across batches.
#: ``s2_dictionary`` is a cascade's inner-stage dictionary (see
#: :mod:`repro.compression.cascade`).
_META_ARRAY_KEYS = ("dictionary", "s2_dictionary")

#: cache entry: (cached value, nbytes, owning tenant, insertion sequence);
#: the value is an ndarray in the array/decoded stores and a
#: :class:`~repro.compression.base.CompressedColumn` in the morph store
_Entry = Tuple[Any, int, str, int]


def _column_digest(column: "CompressedColumn") -> bytes:
    """Content digest covering payload and metadata (decode inputs).

    The codec name is hashed first, so two columns with byte-identical
    payloads under different codecs — e.g. a cascade column and the
    inner-stage column it wraps — can never share a digest.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(column.codec.encode())
    h.update(str(column.n).encode())
    h.update(column.payload.tobytes())
    for key in sorted(column.meta):
        value = column.meta[key]
        h.update(key.encode())
        if isinstance(value, np.ndarray):
            h.update(str(value.dtype).encode())
            h.update(value.tobytes())
        else:
            h.update(repr(value).encode())
    return h.digest()


def _column_nbytes(column: "CompressedColumn") -> int:
    """Resident bytes of a cached compressed column (payload + metadata)."""
    total = int(column.payload.nbytes)
    for value in column.meta.values():
        if isinstance(value, np.ndarray):
            total += int(value.nbytes)
    return total


class DecodeCache:
    """Bounded LRU over interned metadata arrays and decoded columns."""

    def __init__(
        self,
        max_entries: int = 32,
        max_bytes: Optional[int] = None,
        tenant_quota_bytes: Optional[int] = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive when set")
        if tenant_quota_bytes is not None and tenant_quota_bytes < 1:
            raise ValueError("tenant_quota_bytes must be positive when set")
        if (
            max_bytes is not None
            and tenant_quota_bytes is not None
            and tenant_quota_bytes > max_bytes
        ):
            raise ValueError("tenant_quota_bytes cannot exceed max_bytes")
        self.max_entries = int(max_entries)
        self.max_bytes = max_bytes
        self.tenant_quota_bytes = tenant_quota_bytes
        self._arrays: "OrderedDict[bytes, _Entry]" = OrderedDict()
        self._decoded: "OrderedDict[bytes, _Entry]" = OrderedDict()
        self._morphed: "OrderedDict[bytes, _Entry]" = OrderedDict()
        self._seq = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: inserts skipped because the array alone exceeded a bound
        self.oversized_rejections = 0
        #: recompressions served from / added to the morph store
        self.morph_hits = 0
        self.morph_misses = 0

    # ----- accounting ------------------------------------------------------

    def _stores(self) -> Tuple["OrderedDict[bytes, _Entry]", ...]:
        return (self._arrays, self._decoded, self._morphed)

    @property
    def total_bytes(self) -> int:
        return sum(e[1] for store in self._stores() for e in store.values())

    def tenant_bytes(self, tenant: str) -> int:
        return sum(
            e[1]
            for store in self._stores()
            for e in store.values()
            if e[2] == tenant
        )

    def bytes_by_tenant(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for store in self._stores():
            for _, nbytes, tenant, _ in store.values():
                totals[tenant] = totals.get(tenant, 0) + nbytes
        return totals

    def __len__(self) -> int:
        return sum(len(store) for store in self._stores())

    # ----- public API ------------------------------------------------------

    def intern(self, array: np.ndarray, tenant: str = "") -> np.ndarray:
        """Return a shared read-only array with this content."""
        key = hashlib.blake2b(
            str(array.dtype).encode() + array.tobytes(), digest_size=16
        ).digest()
        hit = self._arrays.get(key)
        if hit is not None:
            self._arrays.move_to_end(key)
            self.hits += 1
            return hit[0]
        self.misses += 1
        shared = np.ascontiguousarray(array)
        shared.setflags(write=False)
        self._put(self._arrays, key, shared, tenant)
        return shared

    def intern_meta(self, column: "CompressedColumn", tenant: str = "") -> None:
        """Replace known metadata arrays with their interned versions."""
        for key in _META_ARRAY_KEYS:
            value = column.meta.get(key)
            if isinstance(value, np.ndarray):
                column.meta[key] = self.intern(value, tenant=tenant)

    def decompress(
        self, codec: "Codec", column: "CompressedColumn", tenant: str = ""
    ) -> np.ndarray:
        """``codec.decompress`` memoized on the column's content digest."""
        key = _column_digest(column)
        hit = self._decoded.get(key)
        if hit is not None:
            self._decoded.move_to_end(key)
            self.hits += 1
            return hit[0]
        self.misses += 1
        values = np.ascontiguousarray(codec.decompress(column), dtype=np.int64)
        values.setflags(write=False)
        self._put(self._decoded, key, values, tenant)
        return values

    def morph(
        self,
        codec: "Codec",
        column: "CompressedColumn",
        target: "Codec",
        tenant: str = "",
    ) -> "CompressedColumn":
        """Recompress a column under ``target``, memoized on content digest.

        The key extends the source column's digest with the target codec
        name, so the same wire payload morphed to two different layouts
        occupies two entries and a morphed intermediate can never collide
        with a plain decode of the same bytes.
        """
        key = _column_digest(column) + target.name.encode()
        hit = self._morphed.get(key)
        if hit is not None:
            self._morphed.move_to_end(key)
            self.morph_hits += 1
            return hit[0]
        self.morph_misses += 1
        values = np.ascontiguousarray(codec.decompress(column), dtype=np.int64)
        morphed = target.compress(values)
        self._put(
            self._morphed, key, morphed, tenant, nbytes=_column_nbytes(morphed)
        )
        return morphed

    # ----- insertion and eviction ------------------------------------------

    def _put(
        self,
        store: "OrderedDict[bytes, _Entry]",
        key: bytes,
        value: Any,
        tenant: str,
        nbytes: Optional[int] = None,
    ) -> None:
        if nbytes is None:
            nbytes = int(value.nbytes)
        limit = self.max_bytes
        if self.tenant_quota_bytes is not None:
            limit = (
                self.tenant_quota_bytes
                if limit is None
                else min(limit, self.tenant_quota_bytes)
            )
        if limit is not None and nbytes > limit:
            # caching it would immediately evict it (or everything else);
            # hand the array back uncached instead
            self.oversized_rejections += 1
            return
        store[key] = (value, nbytes, tenant, self._seq)
        self._seq += 1
        while len(store) > self.max_entries:
            store.popitem(last=False)
            self.evictions += 1
        if self.tenant_quota_bytes is not None:
            self._evict_tenant_to_quota(tenant)
        if self.max_bytes is not None:
            self._evict_to_bytes()

    def _evict_tenant_to_quota(self, tenant: str) -> None:
        """Evict the inserting tenant's own oldest entries down to quota."""
        quota = self.tenant_quota_bytes
        if quota is None:
            return
        while self.tenant_bytes(tenant) > quota:
            victim = min(
                (
                    (entry[3], store, key)
                    for store in self._stores()
                    for key, entry in store.items()
                    if entry[2] == tenant
                ),
                key=lambda item: item[0],
            )
            del victim[1][victim[2]]
            self.evictions += 1

    def _evict_to_bytes(self) -> None:
        """Evict globally oldest entries until under the hard byte bound."""
        limit = self.max_bytes
        if limit is None:
            return
        while self.total_bytes > limit and len(self):
            victim = min(
                (
                    (entry[3], store, key)
                    for store in self._stores()
                    for key, entry in store.items()
                ),
                key=lambda item: item[0],
            )
            del victim[1][victim[2]]
            self.evictions += 1
