"""Per-column decode cache: reuse repeated dictionary/metadata segments.

Stream batches frequently resend identical metadata — a slowly-changing
DICT/Bitmap dictionary, an all-equal column's payload — and the server
used to rebuild the same arrays batch after batch.  The cache interns
metadata arrays by content digest (so one shared, read-only array backs
every batch that carries it) and memoizes whole-column decompression for
byte-identical compressed columns.

Both stores are small LRUs: stream metadata has low cardinality, so a
handful of entries capture the repetition without growing with the stream.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..compression.base import Codec, CompressedColumn

#: Metadata keys that hold arrays worth interning across batches.
_META_ARRAY_KEYS = ("dictionary",)


def _column_digest(column: "CompressedColumn") -> bytes:
    """Content digest covering payload and metadata (decode inputs)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(column.codec.encode())
    h.update(str(column.n).encode())
    h.update(column.payload.tobytes())
    for key in sorted(column.meta):
        value = column.meta[key]
        h.update(key.encode())
        if isinstance(value, np.ndarray):
            h.update(str(value.dtype).encode())
            h.update(value.tobytes())
        else:
            h.update(repr(value).encode())
    return h.digest()


class DecodeCache:
    """Bounded LRU over interned metadata arrays and decoded columns."""

    def __init__(self, max_entries: int = 32):
        self.max_entries = int(max_entries)
        self._arrays: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self._decoded: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def intern(self, array: np.ndarray) -> np.ndarray:
        """Return a shared read-only array with this content."""
        key = hashlib.blake2b(
            str(array.dtype).encode() + array.tobytes(), digest_size=16
        ).digest()
        hit = self._arrays.get(key)
        if hit is not None:
            self._arrays.move_to_end(key)
            self.hits += 1
            return hit
        self.misses += 1
        shared = np.ascontiguousarray(array)
        shared.setflags(write=False)
        self._put(self._arrays, key, shared)
        return shared

    def intern_meta(self, column: "CompressedColumn") -> None:
        """Replace known metadata arrays with their interned versions."""
        for key in _META_ARRAY_KEYS:
            value = column.meta.get(key)
            if isinstance(value, np.ndarray):
                column.meta[key] = self.intern(value)

    def decompress(self, codec: "Codec", column: "CompressedColumn") -> np.ndarray:
        """``codec.decompress`` memoized on the column's content digest."""
        key = _column_digest(column)
        hit = self._decoded.get(key)
        if hit is not None:
            self._decoded.move_to_end(key)
            self.hits += 1
            return hit
        self.misses += 1
        values = np.ascontiguousarray(codec.decompress(column), dtype=np.int64)
        values.setflags(write=False)
        self._put(self._decoded, key, values)
        return values

    def _put(
        self, store: "OrderedDict[bytes, np.ndarray]", key: bytes, value: np.ndarray
    ) -> None:
        store[key] = value
        while len(store) > self.max_entries:
            store.popitem(last=False)
