"""The tenant supervisor: isolation, restarts, scheduling, recovery.

The supervisor runs every tenant's :class:`~repro.serve.session.TenantSession`
as an isolated unit under one virtual clock.  Its scheduling loop is a
fixed-order round-robin gated by the admission token bucket; each granted
step serves one batch for one tenant and advances the clock by that
step's deterministic virtual cost.

Crash containment has exactly **one** recovery point:
:meth:`ServeSupervisor._protected_step` is the only place in the serving
layer allowed to catch engine exceptions (enforced by lint rule CSD007).
A tenant whose engine raises ``CodecError``/``WireFormatError``/... is
restarted with bounded exponential backoff in virtual time — resuming
from its latest checkpoint — and parked as QUARANTINED once the restart
budget is exhausted.  The process never dies with it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..core.decode_cache import DecodeCache
from ..errors import ReproError, ServeError
from ..sql.executor import QueryResult
from .admission import AdmissionConfig, AdmissionController, backpressure_frame
from .breaker import OPEN, BreakerConfig, CircuitBreaker
from .checkpoint import CheckpointStore, TenantCheckpoint
from .clock import VirtualClock
from .report import DEGRADED, HEALTHY, QUARANTINED, ServeReport, TenantReport
from .session import DELIVERED, DONE, QUARANTINED as BATCH_QUARANTINED
from .session import StepOutcome, TenantSession, TenantSpec


@dataclass(frozen=True)
class RestartPolicy:
    """Bounded exponential restart backoff (virtual seconds, per CSD005)."""

    max_restarts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ServeError("max_restarts cannot be negative")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ServeError("backoff times cannot be negative")
        if self.backoff_factor < 1.0:
            raise ServeError("backoff_factor must be >= 1")
        if not math.isfinite(self.backoff_cap_s):
            raise ServeError("backoff_cap_s must be finite")

    def backoff_s(self, restart_index: int) -> float:
        """Backoff before restart number ``restart_index`` (0-based)."""
        return min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_factor ** restart_index,
        )


@dataclass(frozen=True)
class ServeConfig:
    """Fleet-level policies of the serving layer."""

    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    restart: RestartPolicy = field(default_factory=RestartPolicy)
    #: shared decode-cache sizing (entries / hard bytes / per-tenant bytes)
    cache_entries: int = 64
    cache_max_bytes: int = 32 * 1024 * 1024
    cache_tenant_quota_bytes: int = 4 * 1024 * 1024


class TenantRunner:
    """Supervisor-side bookkeeping wrapped around one tenant session."""

    def __init__(self, spec: TenantSpec, breaker_config: BreakerConfig):
        self.spec = spec
        self.session: Optional[TenantSession] = None
        self.breaker = CircuitBreaker(breaker_config)
        self.report = TenantReport(tenant=spec.tenant, batches_total=spec.batches)
        self.restarts = 0
        self.disarmed: Set[int] = set()
        #: virtual time before which this runner may not be scheduled
        self.next_eligible_at = 0.0
        self.paused = False
        #: virtual seconds of *unpaused* stream time (drives arrivals)
        self.arrival_clock = 0.0
        self.parked = False
        self.steps_since_checkpoint = 0
        #: batch indices already counted as delivered (replays after a
        #: checkpoint restore must not double-count)
        self.delivered_indices: Set[int] = set()

    @property
    def finished(self) -> bool:
        return self.parked or (self.session is not None and self.session.done)

    def arrived_batches(self) -> int:
        """Batches that have arrived from the stream by virtual now."""
        rate = self.spec.arrival_rate_bps
        if rate is None:
            return self.spec.batches
        return min(self.spec.batches, 1 + int(self.arrival_clock * rate))

    def queue_depth(self) -> int:
        """Arrived batches still queued for service (shed marks excluded)."""
        if self.session is None:
            return 0
        return max(
            0,
            self.arrived_batches()
            - self.session.cursor
            - len(self.session.shed_indices),
        )


class ServeSupervisor:
    """Multi-tenant scheduling loop with containment and recovery."""

    def __init__(
        self,
        specs: Sequence[TenantSpec],
        config: Optional[ServeConfig] = None,
        store: Optional[CheckpointStore] = None,
        cache: Optional[DecodeCache] = None,
        resume: bool = False,
        clock: Optional[VirtualClock] = None,
    ):
        if not specs:
            raise ServeError("the supervisor needs at least one tenant")
        names = [spec.tenant for spec in specs]
        if len(set(names)) != len(names):
            raise ServeError("tenant ids must be unique")
        self.config = config or ServeConfig()
        self.store = store if store is not None else CheckpointStore()
        self.clock = clock or VirtualClock()
        self.cache = cache or DecodeCache(
            max_entries=self.config.cache_entries,
            max_bytes=self.config.cache_max_bytes,
            tenant_quota_bytes=self.config.cache_tenant_quota_bytes,
        )
        self.admission = AdmissionController(self.config.admission)
        self.runners: List[TenantRunner] = []
        for spec in specs:
            runner = TenantRunner(spec, self.config.breaker)
            checkpoint = self.store.latest(spec.tenant) if resume else None
            if checkpoint is not None:
                self._resume_runner(runner, checkpoint)
            else:
                runner.session = TenantSession(
                    spec, cache=self.cache, disarmed=runner.disarmed
                )
            self.runners.append(runner)
        self._last_round_at = self.clock.now

    def _resume_runner(self, runner: TenantRunner, ckpt: TenantCheckpoint) -> None:
        runner.disarmed = set(ckpt.disarmed_crashes)
        runner.session = TenantSession.restore(
            runner.spec, ckpt.payload, cache=self.cache, disarmed=runner.disarmed
        )
        runner.report.resumed_from_batch = ckpt.batches_processed
        # already-delivered outputs must not be re-counted when batches
        # between the checkpoint and the kill point are replayed
        runner.delivered_indices = set(runner.session.outputs)
        # the new supervisor starts with a fresh (CLOSED) breaker: degraded
        # mode is breaker-derived state, so the session follows it
        runner.session.set_degraded(False)
        self.clock.advance_to(ckpt.virtual_time)
        runner.arrival_clock = max(runner.arrival_clock, ckpt.virtual_time)

    # ----- scheduling loop -------------------------------------------------

    def run(self, max_steps: Optional[int] = None) -> ServeReport:
        """Serve until every tenant finishes (or ``max_steps`` is reached)."""
        steps = 0
        while any(not r.finished for r in self.runners):
            if max_steps is not None and steps >= max_steps:
                break
            self._update_arrivals()
            progressed = False
            for runner in self.runners:
                if runner.finished:
                    continue
                now = self.clock.now
                if now < runner.next_eligible_at:
                    continue
                if runner.breaker.state == OPEN:
                    if not runner.breaker.allow_probe(now):
                        continue
                    # half-open probe runs at full service quality
                    if runner.session is not None:
                        runner.session.set_degraded(False)
                if runner.arrived_batches() <= self._cursor(runner):
                    continue
                if not self.admission.admit(now):
                    break  # token bucket dry: the round ends here
                outcome = self._protected_step(runner)
                progressed = True
                steps += 1
                if outcome is not None:
                    self._after_step(runner, outcome)
                if max_steps is not None and steps >= max_steps:
                    break
            if not progressed:
                self._advance_to_next_event()
        return self._final_report()

    def _cursor(self, runner: TenantRunner) -> int:
        return 0 if runner.session is None else runner.session.cursor

    # ----- the single recovery point (CSD007) ------------------------------

    def _protected_step(self, runner: TenantRunner) -> Optional[StepOutcome]:
        """Step one tenant; contain any engine failure to that tenant."""
        if runner.session is None:
            raise ServeError(f"tenant {runner.spec.tenant!r} has no session")
        try:
            return runner.session.step(self.clock.now)
        except ReproError as exc:  # lint: supervised
            self._contain_crash(runner, exc)
            return None

    def _contain_crash(self, runner: TenantRunner, exc: ReproError) -> None:
        runner.report.crashes += 1
        if runner.session is not None:
            crashed_index = runner.session.cursor
            if crashed_index in runner.spec.crash_batches:
                runner.disarmed.add(crashed_index)
        runner.breaker.record(self.clock.now, failed=True)
        runner.restarts += 1
        if runner.restarts > self.config.restart.max_restarts:
            self._park(runner)
            return
        runner.report.restarts = runner.restarts
        backoff = self.config.restart.backoff_s(runner.restarts - 1)
        runner.next_eligible_at = self.clock.now + backoff
        self._restart(runner)

    def _restart(self, runner: TenantRunner) -> None:
        ckpt = self.store.latest(runner.spec.tenant)
        if ckpt is not None:
            runner.disarmed |= set(ckpt.disarmed_crashes)
            runner.session = TenantSession.restore(
                runner.spec, ckpt.payload, cache=self.cache, disarmed=runner.disarmed
            )
            runner.report.resumed_from_batch = ckpt.batches_processed
        else:
            runner.session = TenantSession(
                runner.spec, cache=self.cache, disarmed=runner.disarmed
            )
        # degraded mode is breaker-derived; re-apply it to the new session
        runner.session.set_degraded(runner.breaker.degraded)

    def _park(self, runner: TenantRunner) -> None:
        """Quarantine a tenant whose restart budget is exhausted."""
        runner.parked = True
        runner.report.health = QUARANTINED

    # ----- post-step bookkeeping -------------------------------------------

    def _after_step(self, runner: TenantRunner, outcome: StepOutcome) -> None:
        if outcome.kind == DONE:
            return
        self.clock.advance(outcome.virtual_seconds)
        failed = (
            outcome.kind == BATCH_QUARANTINED
            or outcome.attempts >= self.config.breaker.retry_pressure
        )
        runner.breaker.record(self.clock.now, failed=failed)
        if runner.session is not None:
            runner.session.set_degraded(runner.breaker.degraded)
        if (
            outcome.kind == DELIVERED
            and outcome.batch_index not in runner.delivered_indices
        ):
            runner.delivered_indices.add(outcome.batch_index)
            runner.report.latencies_s.append(outcome.virtual_seconds)
        runner.steps_since_checkpoint += 1
        if (
            runner.spec.checkpoint_every
            and runner.steps_since_checkpoint >= runner.spec.checkpoint_every
        ):
            self._checkpoint(runner)

    def _checkpoint(self, runner: TenantRunner) -> None:
        if runner.session is None:
            return
        self.store.save(
            TenantCheckpoint(
                tenant=runner.spec.tenant,
                batches_processed=runner.session.cursor,
                payload=runner.session.state_bytes(),
                virtual_time=self.clock.now,
                disarmed_crashes=tuple(sorted(runner.disarmed)),
            )
        )
        runner.report.checkpoints_saved += 1
        runner.steps_since_checkpoint = 0

    # ----- arrivals, watermarks, backpressure ------------------------------

    def _update_arrivals(self) -> None:
        now = self.clock.now
        dt = now - self._last_round_at
        self._last_round_at = now
        offered = []
        for runner in self.runners:
            if runner.finished or runner.spec.arrival_rate_bps is None:
                continue
            if not runner.paused:
                runner.arrival_clock += dt
            offered.append((runner.spec.tenant, runner.queue_depth()))
        if not offered:
            return
        decisions = self.admission.shed(offered)
        by_name = {r.spec.tenant: r for r in self.runners}
        for tenant, excess in decisions:
            self._shed_newest(by_name[tenant], excess)
        high = self.config.admission.high_watermark
        low = self.config.admission.low_watermark
        for tenant, _depth in offered:
            runner = by_name[tenant]
            depth = runner.queue_depth()
            if not runner.paused and depth >= high:
                self._signal_backpressure(runner, pause=True)
            elif runner.paused and depth <= low:
                self._signal_backpressure(runner, pause=False)

    def _shed_newest(self, runner: TenantRunner, count: int) -> None:
        """Reject-newest: drop the most recent arrivals above the watermark."""
        session = runner.session
        if session is None or count <= 0:
            return
        indices = []
        index = runner.arrived_batches() - 1
        while len(indices) < count and index >= session.cursor:
            if index not in session.shed_indices:
                indices.append(index)
            index -= 1
        session.mark_shed(indices)

    def _signal_backpressure(self, runner: TenantRunner, pause: bool) -> None:
        """Push an XOFF/XON frame to the client over its own link."""
        if runner.session is None:
            return
        frame = backpressure_frame(pause)
        self.clock.advance(runner.session.charge_control_frame(frame))
        runner.paused = pause
        if pause:
            runner.report.xoff_frames += 1

    # ----- idle handling ---------------------------------------------------

    def _advance_to_next_event(self) -> None:
        """Nothing ran this round: jump the clock to the earliest event."""
        now = self.clock.now
        candidates: List[float] = []
        for runner in self.runners:
            if runner.finished:
                continue
            if runner.next_eligible_at > now:
                candidates.append(runner.next_eligible_at)
            if runner.breaker.state == OPEN:
                candidates.append(runner.breaker.next_probe_at())
            rate = runner.spec.arrival_rate_bps
            if (
                rate is not None
                and not runner.paused
                and runner.arrived_batches() <= self._cursor(runner)
            ):
                shortfall = self._cursor(runner) / rate - runner.arrival_clock
                candidates.append(now + max(shortfall, 0.0) + 1e-9)
        candidates.append(self.admission.next_admission_at(now))
        future = [c for c in candidates if c > now]
        if not future:
            raise ServeError(
                "supervisor livelock: active tenants but no future event"
            )
        self.clock.advance_to(min(future))

    # ----- results ---------------------------------------------------------

    def outputs(self, tenant: str) -> Dict[int, QueryResult]:
        """The per-batch-index outputs delivered for one tenant."""
        for runner in self.runners:
            if runner.spec.tenant == tenant:
                if runner.session is None:
                    return {}
                return dict(runner.session.outputs)
        raise ServeError(f"unknown tenant {tenant!r}")

    def merged_outputs(self, tenant: str) -> QueryResult:
        """All delivered outputs for a tenant, in batch order."""
        per_batch = self.outputs(tenant)
        return QueryResult.merge([per_batch[i] for i in sorted(per_batch)])

    def _final_report(self) -> ServeReport:
        reports = []
        for runner in self.runners:
            report = runner.report
            session = runner.session
            if session is not None:
                # delivery counters live in the (checkpointed) session, so
                # they stay exact across restarts and post-restore replays
                report.batches_delivered = len(session.outputs)
                report.tuples_delivered = session.tuples_delivered
                report.batches_shed = session.batches_shed + len(
                    session.shed_indices
                )
                if session.transport is not None:
                    report.dead_letters = session.transport.report.quarantined
                    report.retries = session.transport.report.retried
            report.breaker_trips = runner.breaker.trips
            report.breaker_recoveries = runner.breaker.recoveries
            if runner.parked:
                report.health = QUARANTINED
                report.batches_quarantined = max(
                    0,
                    report.batches_total
                    - report.batches_delivered
                    - report.batches_shed,
                )
            else:
                report.batches_quarantined = report.dead_letters
                report.health = DEGRADED if runner.breaker.degraded else HEALTHY
            reports.append(report)
        return ServeReport(
            tenants=reports,
            virtual_makespan_s=self.clock.now,
            admitted_steps=self.admission.admitted,
            deferred_steps=self.admission.deferred,
            process_crashes=0,
        )
