"""One tenant's engine+transport session, stepped by the supervisor.

A :class:`TenantSession` owns everything the engine's
:class:`~repro.core.pipeline.Pipeline` would own for a single run —
client, server, channel, reliable transport, lookahead buffer — but
exposes it one batch at a time (:meth:`step`) so the supervisor can
interleave tenants, contain crashes and checkpoint between batches.

Determinism is the load-bearing property: sessions always run with
``profile_query=False`` (codec selection depends only on the calibration
table, never on measured wall time) and all virtual-time inputs to the
scheduler come from the transport/channel simulation plus a fixed
per-batch service quantum.  Two sessions built from the same
:class:`TenantSpec` therefore produce byte-identical outputs — the
property the kill-and-recover differential test and the chaos oracle
lean on.

Checkpointing pickles the session's mutable object graph in one piece
(client, server minus the shared decode cache, channel, transport,
lookahead, outputs) so shared references — the cost model's channel
handle, the fault injector's RNG position — survive intact.  The source
iterator is *not* pickled: it is rebuilt from the spec's seeded factory
and fast-forwarded to the pulled-batch cursor, the virtual-time
equivalent of a log offset seek.
"""

from __future__ import annotations

import pickle
from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import Deque, Dict, Iterable, Optional, Set, Tuple

from ..core.client import Client
from ..core.cost_model import SystemParams
from ..core.decode_cache import DecodeCache
from ..core.engine import CompressStreamDB, EngineConfig
from ..core.server import Server
from ..errors import CodecError, ServeError
from ..net.channel import Channel, QueuedChannel
from ..net.faults import FaultProfile, FaultyChannel
from ..net.transport import ReliabilityConfig, ReliableTransport
from ..sql.executor import QueryResult
from ..stream.batch import Batch

#: codec names a degraded tenant is confined to: cheap, always-applicable
#: encodings with no dictionary state and no direct-path execution needs
DEGRADED_POOL = ("identity", "ns")

DELIVERED = "delivered"
QUARANTINED = "quarantined"
DONE = "done"


@dataclass(frozen=True)
class TenantSpec:
    """A reproducible description of one tenant's workload and link."""

    tenant: str
    query: str = "q1"
    #: dotted module exposing a ``QUERIES`` registry to resolve ``query``
    #: in; empty = the paper's Table III queries.  Any registry entry
    #: duck-typing :class:`~repro.datasets.queries.QueryConfig` works —
    #: this is how ``repro.workloads`` replays its corpus through the
    #: fleet path without the serving layer importing it
    query_module: str = ""
    batches: int = 12
    batch_size: int = 1024
    seed: int = 0
    mode: str = "adaptive"
    bandwidth_mbps: Optional[float] = 500.0
    latency_s: float = 0.0
    #: arrival model (tuples/s); None = whole stream available up front
    arrival_rate_tps: Optional[float] = None
    fault_profile: Optional[FaultProfile] = None
    reliability: Optional[ReliabilityConfig] = None
    #: batch indices that raise an injected CodecError (crash-containment
    #: and recovery testing); each crashes once, then is disarmed
    crash_batches: Tuple[int, ...] = ()
    #: checkpoint after every N processed batches (0 disables)
    checkpoint_every: int = 8
    #: fixed virtual seconds of client+server compute charged per batch
    #: (the deterministic stand-in for measured compress/query time)
    service_quantum_s: float = 0.002
    demote_after: int = 3
    #: run tenant queries through the rule-based optimizer (the engine
    #: default); False pins the planner's naive plan shape
    optimize: bool = True

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ServeError("a tenant needs a non-empty id")
        if self.batches < 1 or self.batch_size < 1:
            raise ServeError("batches and batch_size must be positive")
        if self.checkpoint_every < 0:
            raise ServeError("checkpoint_every cannot be negative")
        if self.service_quantum_s < 0:
            raise ServeError("service_quantum_s cannot be negative")

    def query_config(self):
        if self.query_module:
            import importlib

            try:
                module = importlib.import_module(self.query_module)
            except ImportError as exc:
                raise ServeError(
                    f"query module {self.query_module!r} not importable: {exc}"
                ) from exc
            registry = getattr(module, "QUERIES", None)
            if not isinstance(registry, dict) or self.query not in registry:
                raise ServeError(
                    f"unknown query {self.query!r} in module "
                    f"{self.query_module!r}"
                )
            return registry[self.query]
        from ..datasets.queries import QUERIES

        if self.query not in QUERIES:
            raise ServeError(f"unknown query {self.query!r}")
        return QUERIES[self.query]

    def engine_config(self) -> EngineConfig:
        return EngineConfig(
            mode=self.mode,
            bandwidth_mbps=self.bandwidth_mbps,
            latency_s=self.latency_s,
            params=SystemParams(arrival_rate_tps=self.arrival_rate_tps),
            # calibration-only selection: deterministic across runs, the
            # precondition for checkpoint-replay equivalence
            profile_query=False,
            fault_profile=self.fault_profile,
            reliability=self.reliability,
            demote_after=self.demote_after,
            optimize=self.optimize,
        )

    def make_source(self) -> Iterable[Batch]:
        cfg = self.query_config()
        return cfg.make_source(
            batch_size=self.batch_size, batches=self.batches, seed=self.seed
        )

    @property
    def arrival_rate_bps(self) -> Optional[float]:
        """Arrival rate in batches per virtual second."""
        if self.arrival_rate_tps is None:
            return None
        return self.arrival_rate_tps / self.batch_size


@dataclass
class StepOutcome:
    """What one supervisor-granted service step did."""

    kind: str
    batch_index: int
    tuples: int = 0
    #: deterministic virtual cost of the step (transport + service quantum)
    virtual_seconds: float = 0.0
    attempts: int = 1
    #: batches silently consumed as shed load while reaching this one
    shed: int = 0
    choices: Dict[str, str] = field(default_factory=dict)

    @property
    def delivered(self) -> bool:
        return self.kind == DELIVERED


class TenantSession:
    """The per-tenant unit of isolation the supervisor steps and restarts."""

    def __init__(
        self,
        spec: TenantSpec,
        cache: Optional[DecodeCache] = None,
        disarmed: Optional[Iterable[int]] = None,
    ):
        self.spec = spec
        cfg = spec.query_config()
        engine = CompressStreamDB(
            catalog=cfg.catalog,
            query=cfg.text(slide=cfg.window),
            config=spec.engine_config(),
        )
        pipeline = engine.make_pipeline()
        self.plan = pipeline.plan
        # typed attributes double as the checkpoint-purity rule's map of
        # the pickled object graph (CSD012 walks these annotations)
        self.client: Client = pipeline.client
        self.server: Server = pipeline.server
        if cache is not None:
            self.server.cache = cache
        self.server.tenant = spec.tenant
        self.channel: Channel = pipeline.channel
        self.transport: Optional[ReliableTransport] = None
        if isinstance(self.channel, FaultyChannel):
            self.transport = ReliableTransport(
                self.channel, self.plan.schema, spec.reliability
            )
        self._iterator = iter(spec.make_source())
        self._lookahead: Deque[Batch] = deque()
        self._pulled = 0
        #: index of the next batch to be processed (or shed)
        self.cursor = 0
        self.arrived_tuples = 0
        #: batch index -> that batch's query output; keyed storage makes
        #: post-restore reprocessing exactly-once (replays overwrite with
        #: identical results instead of duplicating rows)
        self.outputs: Dict[int, QueryResult] = {}
        #: input tuples behind the delivered outputs (first deliveries only)
        self.tuples_delivered = 0
        self.batches_shed = 0
        self.shed_indices: Set[int] = set()
        self.disarmed: Set[int] = set(disarmed or ())
        self.degraded = False
        self._refill()

    # ----- stream plumbing -------------------------------------------------

    def _refill(self) -> None:
        while len(self._lookahead) < self.client.lookahead:
            try:
                self._lookahead.append(next(self._iterator))
            except StopIteration:
                break
            self._pulled += 1

    @property
    def done(self) -> bool:
        return not self._lookahead

    @property
    def pending(self) -> int:
        """Batches pulled into the session but not yet processed/shed."""
        return self._pulled - self.cursor

    def mark_shed(self, indices: Iterable[int]) -> int:
        """Reject-newest load shedding: drop these not-yet-served batches."""
        added = 0
        for index in indices:
            if index < self.cursor:
                raise ServeError(f"cannot shed already-served batch {index}")
            if index not in self.shed_indices:
                self.shed_indices.add(index)
                added += 1
        return added

    def charge_control_frame(self, frame: bytes) -> float:
        """Charge a backpressure frame's bytes to this tenant's link."""
        return self.channel.transmit(len(frame))

    # ----- degraded mode ---------------------------------------------------

    def set_degraded(self, degraded: bool) -> None:
        """Enter/leave graceful degradation.

        Degraded tenants force decode-first execution (no
        direct-on-compressed fast paths: simpler, battle-tested code) and
        confine codec selection to the cheap always-safe pool via the
        client-side demotion machinery.
        """
        if degraded == self.degraded:
            return
        self.degraded = degraded
        self.server.force_decode = degraded
        self.client.restrict_pool(set(DEGRADED_POOL) if degraded else None)

    # ----- the per-batch step ---------------------------------------------

    def step(self, now: float) -> StepOutcome:
        """Serve one batch; raises engine errors for the supervisor to contain."""
        shed_now = self._drain_shed()
        if not self._lookahead:
            return StepOutcome(kind=DONE, batch_index=self.cursor, shed=shed_now)
        index = self.cursor
        if index in self.spec.crash_batches and index not in self.disarmed:
            raise CodecError(
                f"injected poison batch {index} for tenant {self.spec.tenant!r}"
            )
        batch = self._lookahead.popleft()
        self._refill()
        self.cursor += 1
        outcome = self.client.compress_batch(batch, upcoming=tuple(self._lookahead))
        quantum = self.spec.service_quantum_s
        ready: Optional[float] = None
        rate = self.spec.arrival_rate_tps
        if self._use_arrivals and rate is not None:
            self.arrived_tuples += batch.n
            ready = self.arrived_tuples / rate + quantum
        if self.transport is not None:
            shipped = self.transport.send_batch(outcome.batch, ready_time=ready)
            if shipped.delivered is None:
                # dead-lettered: time and bytes were spent, no result came out
                return StepOutcome(
                    kind=QUARANTINED,
                    batch_index=index,
                    tuples=batch.n,
                    virtual_seconds=shipped.seconds + quantum,
                    attempts=shipped.attempts,
                    shed=shed_now,
                    choices=outcome.choices,
                )
            trans_seconds = shipped.seconds
            attempts = shipped.attempts
            report = self.server.process(shipped.delivered)
        elif self._use_arrivals:
            trans_seconds, _ = self.channel.send(outcome.batch.nbytes, ready)
            attempts = 1
            report = self.server.process(outcome.batch)
        else:
            trans_seconds = self.channel.transmit(outcome.batch.nbytes)
            attempts = 1
            report = self.server.process(outcome.batch)
        if index not in self.outputs:
            self.tuples_delivered += batch.n
        self.outputs[index] = report.result
        return StepOutcome(
            kind=DELIVERED,
            batch_index=index,
            tuples=batch.n,
            virtual_seconds=trans_seconds + quantum,
            attempts=attempts,
            shed=shed_now,
            choices=outcome.choices,
        )

    def _drain_shed(self) -> int:
        shed = 0
        while self._lookahead and self.cursor in self.shed_indices:
            self._lookahead.popleft()
            self._refill()
            self.shed_indices.discard(self.cursor)
            self.cursor += 1
            self.batches_shed += 1
            shed += 1
        return shed

    @property
    def _use_arrivals(self) -> bool:
        link = (
            self.channel.inner
            if isinstance(self.channel, FaultyChannel)
            else self.channel
        )
        return self.spec.arrival_rate_tps is not None and isinstance(
            link, QueuedChannel
        )

    # ----- checkpoint / restore -------------------------------------------

    def state_bytes(self) -> bytes:
        """The session's mutable state, pickled as one object graph."""
        cache = self.server.cache
        # the decode cache is shared across tenants and rebuilt on restore;
        # detach it so a checkpoint holds only this tenant's state
        self.server.cache = None
        try:
            state = {
                "client": self.client,
                "server": self.server,
                "channel": self.channel,
                "transport": self.transport,
                "lookahead": list(self._lookahead),
                "pulled": self._pulled,
                "cursor": self.cursor,
                "arrived_tuples": self.arrived_tuples,
                "outputs": self.outputs,
                "tuples_delivered": self.tuples_delivered,
                "batches_shed": self.batches_shed,
                "shed_indices": set(self.shed_indices),
                "degraded": self.degraded,
            }
            return pickle.dumps(state, protocol=4)
        finally:
            self.server.cache = cache

    @classmethod
    def restore(
        cls,
        spec: TenantSpec,
        payload: bytes,
        cache: Optional[DecodeCache] = None,
        disarmed: Optional[Iterable[int]] = None,
    ) -> "TenantSession":
        """Resume a session from :meth:`state_bytes` output."""
        state = pickle.loads(payload)
        session = cls.__new__(cls)
        session.spec = spec
        session.client = state["client"]
        session.server = state["server"]
        session.server.cache = cache if cache is not None else DecodeCache()
        session.server.tenant = spec.tenant
        session.plan = session.server.plan
        session.channel = state["channel"]
        session.transport = state["transport"]
        session._lookahead = deque(state["lookahead"])
        session._pulled = state["pulled"]
        session.cursor = state["cursor"]
        session.arrived_tuples = state["arrived_tuples"]
        session.outputs = dict(state["outputs"])
        session.tuples_delivered = state["tuples_delivered"]
        session.batches_shed = state["batches_shed"]
        session.shed_indices = set(state["shed_indices"])
        session.disarmed = set(disarmed or ())
        session.degraded = state["degraded"]
        # log-offset seek: rebuild the seeded source and skip everything
        # the checkpointed session had already pulled
        session._iterator = iter(spec.make_source())
        consumed = sum(1 for _ in islice(session._iterator, session._pulled))
        if consumed < session._pulled:
            raise ServeError(
                f"source for tenant {spec.tenant!r} ended at batch {consumed}, "
                f"cannot seek to checkpointed cursor {session._pulled}"
            )
        session._refill()
        return session
