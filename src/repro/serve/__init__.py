"""repro.serve — the resilient multi-tenant serving layer.

Runs many tenants' engine+transport sessions under one supervisor with
crash containment, bounded-backoff restarts, admission control and
backpressure, per-tenant circuit breakers with graceful degradation, and
checkpointed recovery.  Everything is scheduled on a virtual clock
(CSD007), so a serving run is deterministic and bit-reproducible.
"""

from .admission import (
    CONTROL_SEQ,
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
    backpressure_frame,
    parse_backpressure_frame,
)
from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerConfig, CircuitBreaker
from .checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    FileCheckpointStore,
    TenantCheckpoint,
)
from .clock import VirtualClock
from .report import (
    DEGRADED,
    HEALTH_STATES,
    HEALTHY,
    QUARANTINED,
    ServeReport,
    TenantReport,
)
from .session import DEGRADED_POOL, StepOutcome, TenantSession, TenantSpec
from .supervisor import RestartPolicy, ServeConfig, ServeSupervisor, TenantRunner

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BreakerConfig",
    "CHECKPOINT_VERSION",
    "CLOSED",
    "CONTROL_SEQ",
    "CheckpointStore",
    "CircuitBreaker",
    "DEGRADED",
    "DEGRADED_POOL",
    "FileCheckpointStore",
    "HALF_OPEN",
    "HEALTH_STATES",
    "HEALTHY",
    "OPEN",
    "QUARANTINED",
    "RestartPolicy",
    "ServeConfig",
    "ServeReport",
    "ServeSupervisor",
    "StepOutcome",
    "TenantCheckpoint",
    "TenantReport",
    "TenantRunner",
    "TenantSession",
    "TenantSpec",
    "TokenBucket",
    "VirtualClock",
    "backpressure_frame",
    "parse_backpressure_frame",
]
