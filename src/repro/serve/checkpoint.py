"""Checkpointed recovery: per-tenant stream-state snapshots.

A tenant session's mutable state — window partials and batch-buffer
tails inside the executor, codec dictionaries and the decode memo,
selector calibration/hysteresis, transport sequence numbers and the
fault injector's RNG position — is periodically serialized into a
:class:`TenantCheckpoint`.  A supervisor restart then *resumes from the
last checkpoint* instead of replaying the stream from the start: the
source is re-seeked to the checkpoint's batch cursor (the virtual
equivalent of a log-offset seek) and every stateful component picks up
exactly where the snapshot left it, so post-recovery results are
bit-compatible with an uninterrupted run.

Two stores implement the same small interface: an in-memory store for
tests and single-process serving, and a file store whose dumps double as
CI failure artifacts (one pickle per tenant plus a JSON index).
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ServeError

#: bump when the checkpoint payload layout changes incompatibly
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class TenantCheckpoint:
    """One durable snapshot of a tenant session."""

    tenant: str
    #: batches fully processed when the snapshot was taken (source cursor)
    batches_processed: int
    #: pickled session state (see TenantSession.state_bytes)
    payload: bytes
    #: virtual time at which the snapshot was taken
    virtual_time: float = 0.0
    #: poison-batch indices already crashed on and disarmed (supervisor
    #: bookkeeping that must survive a restart alongside session state)
    disarmed_crashes: Tuple[int, ...] = ()
    version: int = CHECKPOINT_VERSION

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ServeError("a checkpoint needs a tenant id")
        if self.batches_processed < 0:
            raise ServeError("batches_processed cannot be negative")

    @property
    def nbytes(self) -> int:
        return len(self.payload)


class CheckpointStore:
    """In-memory latest-checkpoint-per-tenant store."""

    def __init__(self) -> None:
        self._latest: Dict[str, TenantCheckpoint] = {}
        self.saves = 0

    def save(self, checkpoint: TenantCheckpoint) -> None:
        if checkpoint.version != CHECKPOINT_VERSION:
            raise ServeError(
                f"checkpoint version {checkpoint.version} != {CHECKPOINT_VERSION}"
            )
        self._latest[checkpoint.tenant] = checkpoint
        self.saves += 1

    def latest(self, tenant: str) -> Optional[TenantCheckpoint]:
        return self._latest.get(tenant)

    def tenants(self) -> List[str]:
        return sorted(self._latest)

    def drop(self, tenant: str) -> None:
        self._latest.pop(tenant, None)

    def dump(self, directory: Union[str, Path]) -> List[Path]:
        """Write every checkpoint to ``directory`` (CI failure artifacts)."""
        out = Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        written: List[Path] = []
        index = []
        for tenant in self.tenants():
            ckpt = self._latest[tenant]
            path = out / f"{tenant}.ckpt"
            path.write_bytes(pickle.dumps(ckpt, protocol=4))
            written.append(path)
            index.append(
                {
                    "tenant": ckpt.tenant,
                    "batches_processed": ckpt.batches_processed,
                    "virtual_time": ckpt.virtual_time,
                    "payload_bytes": ckpt.nbytes,
                    "disarmed_crashes": list(ckpt.disarmed_crashes),
                }
            )
        index_path = out / "checkpoints.json"
        index_path.write_text(json.dumps(index, indent=2, sort_keys=True))
        written.append(index_path)
        return written


class FileCheckpointStore(CheckpointStore):
    """A checkpoint store persisted under a directory, one file per tenant.

    Snapshots survive process restarts: a new supervisor pointed at the
    same directory resumes every tenant from its last on-disk snapshot.
    """

    def __init__(self, directory: Union[str, Path]):
        super().__init__()
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        for path in sorted(self.directory.glob("*.ckpt")):
            ckpt = pickle.loads(path.read_bytes())
            if not isinstance(ckpt, TenantCheckpoint):
                raise ServeError(f"{path} does not hold a TenantCheckpoint")
            self._latest[ckpt.tenant] = ckpt

    def _path(self, tenant: str) -> Path:
        return self.directory / f"{tenant}.ckpt"

    def save(self, checkpoint: TenantCheckpoint) -> None:
        super().save(checkpoint)
        self._path(checkpoint.tenant).write_bytes(
            pickle.dumps(checkpoint, protocol=4)
        )

    def drop(self, tenant: str) -> None:
        super().drop(tenant)
        path = self._path(tenant)
        if path.exists():
            path.unlink()
