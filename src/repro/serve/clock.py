"""Virtual clock of the serving layer.

Everything under :mod:`repro.net` already runs in virtual time (CSD005);
the serving layer extends that discipline one level up: restart backoff,
circuit-breaker cooldowns and token-bucket refill are all computed
against this clock, never against the wall (CSD007).  A supervisor run
is therefore bit-reproducible — the schedule depends only on seeded
inputs and deterministic virtual costs, and a simulated slow tenant
costs no real seconds.

The clock only moves forward, in explicit :meth:`advance` steps issued
by the supervisor's scheduling loop; there is no ``sleep`` anywhere —
"waiting" is modelled as an eligibility timestamp compared against
:attr:`now`.
"""

from __future__ import annotations

import math

from ..errors import ServeError


class VirtualClock:
    """A monotonically advancing virtual-seconds counter."""

    def __init__(self, start: float = 0.0):
        if not math.isfinite(start) or start < 0:
            raise ServeError("clock must start at a finite, non-negative time")
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds``; returns the new now."""
        if not math.isfinite(seconds) or seconds < 0:
            raise ServeError("cannot advance the clock by a negative time")
        self._now += seconds
        return self._now

    def advance_to(self, when: float) -> float:
        """Jump forward to ``when`` (no-op if already past it)."""
        if not math.isfinite(when):
            raise ServeError("cannot advance the clock to a non-finite time")
        if when > self._now:
            self._now = when
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.6f})"
