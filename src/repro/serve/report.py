"""Serving-layer health reporting.

A :class:`ServeReport` is the supervisor's answer to the engine's
``RunReport``: one row per tenant with its terminal health state and
delivery/recovery counters, plus aggregate virtual-time goodput for the
whole fleet.  Health is a three-state summary:

* ``HEALTHY`` — breaker closed, no outstanding trouble;
* ``DEGRADED`` — serving, but with the breaker open/half-open (cheap
  codecs, decode-first execution) or after shedding load;
* ``QUARANTINED`` — the restart budget is exhausted; the tenant is
  parked and its unserved batches are accounted as lost, while every
  other tenant keeps running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

HEALTHY = "HEALTHY"
DEGRADED = "DEGRADED"
QUARANTINED = "QUARANTINED"

HEALTH_STATES = (HEALTHY, DEGRADED, QUARANTINED)


@dataclass
class TenantReport:
    """Terminal per-tenant health and delivery counters."""

    tenant: str
    health: str = HEALTHY
    batches_total: int = 0
    batches_delivered: int = 0
    batches_shed: int = 0
    batches_quarantined: int = 0
    tuples_delivered: int = 0
    restarts: int = 0
    crashes: int = 0
    breaker_trips: int = 0
    breaker_recoveries: int = 0
    checkpoints_saved: int = 0
    resumed_from_batch: int = -1
    dead_letters: int = 0
    retries: int = 0
    xoff_frames: int = 0
    #: per-delivered-batch end-to-end virtual latency (seconds)
    latencies_s: List[float] = field(default_factory=list)

    @property
    def delivered_fraction(self) -> float:
        if self.batches_total == 0:
            return 1.0
        return self.batches_delivered / self.batches_total

    def p95_latency_s(self) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        idx = min(len(ordered) - 1, int(0.95 * len(ordered)))
        return ordered[idx]


@dataclass
class ServeReport:
    """Fleet-level outcome of one supervisor run."""

    tenants: List[TenantReport] = field(default_factory=list)
    virtual_makespan_s: float = 0.0
    admitted_steps: int = 0
    deferred_steps: int = 0
    #: always zero by construction — crashes are contained per tenant;
    #: kept on the report so the bench/CI gate can assert it
    process_crashes: int = 0

    def by_tenant(self) -> Dict[str, TenantReport]:
        return {t.tenant: t for t in self.tenants}

    def health_counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in HEALTH_STATES}
        for t in self.tenants:
            counts[t.health] += 1
        return counts

    @property
    def tuples_delivered(self) -> int:
        return sum(t.tuples_delivered for t in self.tenants)

    @property
    def batches_delivered(self) -> int:
        return sum(t.batches_delivered for t in self.tenants)

    @property
    def batches_total(self) -> int:
        return sum(t.batches_total for t in self.tenants)

    @property
    def delivered_fraction(self) -> float:
        total = self.batches_total
        if total == 0:
            return 1.0
        return self.batches_delivered / total

    @property
    def goodput_tps(self) -> float:
        """Delivered tuples per *virtual* second across the fleet."""
        if self.virtual_makespan_s <= 0:
            return 0.0
        return self.tuples_delivered / self.virtual_makespan_s

    def p95_latency_s(self) -> float:
        merged: List[float] = []
        for t in self.tenants:
            merged.extend(t.latencies_s)
        if not merged:
            return 0.0
        ordered = sorted(merged)
        idx = min(len(ordered) - 1, int(0.95 * len(ordered)))
        return ordered[idx]

    def worst_health(self) -> str:
        order = {HEALTHY: 0, DEGRADED: 1, QUARANTINED: 2}
        worst = HEALTHY
        for t in self.tenants:
            if order[t.health] > order[worst]:
                worst = t.health
        return worst

    def summary_rows(self) -> List[Tuple[str, str]]:
        counts = self.health_counts()
        return [
            ("tenants", str(len(self.tenants))),
            (
                "health",
                " / ".join(f"{counts[s]} {s.lower()}" for s in HEALTH_STATES),
            ),
            ("batches delivered", f"{self.batches_delivered}/{self.batches_total}"),
            ("tuples delivered", str(self.tuples_delivered)),
            ("virtual makespan", f"{self.virtual_makespan_s:.3f} s"),
            ("goodput", f"{self.goodput_tps:,.0f} tuples/s (virtual)"),
            ("p95 latency", f"{self.p95_latency_s() * 1e3:.2f} ms (virtual)"),
            ("process crashes", str(self.process_crashes)),
        ]
