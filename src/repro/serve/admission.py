"""Admission control, queue watermarks and backpressure signalling.

Three cooperating mechanisms keep one hot tenant from stalling the
serving layer:

* a **token bucket** paces the aggregate service rate in virtual time —
  each processed batch spends one token, tokens refill at
  ``refill_per_s`` virtual seconds, and a tenant with no token available
  simply waits (the supervisor advances the clock to the next refill
  instead of spinning);
* **queue-depth watermarks**: per-tenant queues of arrived-but-unserved
  batches are bounded.  Crossing the high watermark sheds load
  *deterministically* — reject-newest, and when several tenants' arrivals
  tie within one scheduling round the victim order comes from one seeded
  RNG stream, so a campaign with the same seed sheds the same batches;
* **backpressure frames**: crossing the high watermark also pushes an
  ``XOFF`` control envelope back to the tenant's client through the
  existing transport wire format (its bytes are charged to the tenant's
  channel); the client pauses its arrivals until depth drains to the low
  watermark and an ``XON`` releases it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ServeError
from ..net.transport import pack_envelope, unpack_envelope

#: reserved transport sequence number for serving-layer control frames;
#: data envelopes count up from zero and never legitimately reach it
CONTROL_SEQ = 0xFFFFFFFF

_XOFF = b"XOFF"
_XON = b"XON"


def backpressure_frame(pause: bool) -> bytes:
    """An XOFF/XON control envelope in the existing wire format."""
    return pack_envelope(CONTROL_SEQ, _XOFF if pause else _XON)


def parse_backpressure_frame(frame: bytes) -> bool:
    """True for XOFF (pause), False for XON (resume)."""
    seq, payload = unpack_envelope(frame)
    if seq != CONTROL_SEQ or payload not in (_XOFF, _XON):
        raise ServeError("not a backpressure control frame")
    return payload == _XOFF


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the admission gate (rates are per virtual second)."""

    bucket_capacity: float = 32.0
    refill_per_s: float = 256.0
    #: per-tenant queue depth that trips shedding + XOFF
    high_watermark: int = 8
    #: depth at which a paused tenant gets its XON
    low_watermark: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.bucket_capacity < 1 or not math.isfinite(self.bucket_capacity):
            raise ServeError("bucket_capacity must be >= 1 and finite")
        if self.refill_per_s <= 0 or not math.isfinite(self.refill_per_s):
            raise ServeError("refill_per_s must be positive and finite")
        if self.high_watermark < 1:
            raise ServeError("high_watermark must be >= 1")
        if not 0 <= self.low_watermark <= self.high_watermark:
            raise ServeError("need 0 <= low_watermark <= high_watermark")


class TokenBucket:
    """A deterministic token bucket driven by the virtual clock."""

    def __init__(self, capacity: float, refill_per_s: float, start: float = 0.0):
        if capacity < 1 or refill_per_s <= 0:
            raise ServeError("token bucket needs capacity >= 1 and a positive rate")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._tokens = float(capacity)
        self._updated = float(start)

    def _refill(self, now: float) -> None:
        if now < self._updated:
            raise ServeError("token bucket observed time moving backwards")
        self._tokens = min(
            self.capacity, self._tokens + (now - self._updated) * self.refill_per_s
        )
        self._updated = now

    def available(self, now: float) -> float:
        self._refill(now)
        return self._tokens

    def try_take(self, now: float, tokens: float = 1.0) -> bool:
        self._refill(now)
        if self._tokens + 1e-12 >= tokens:
            self._tokens -= tokens
            return True
        return False

    def next_available_at(self, now: float, tokens: float = 1.0) -> float:
        """Earliest virtual time at which ``tokens`` will be available."""
        self._refill(now)
        if self._tokens >= tokens:
            return now
        return now + (tokens - self._tokens) / self.refill_per_s


class AdmissionController:
    """Token-bucket admission plus watermark-driven shedding decisions."""

    def __init__(self, config: AdmissionConfig):
        self.config = config
        self.bucket = TokenBucket(config.bucket_capacity, config.refill_per_s)
        self._rng = np.random.default_rng(config.seed)
        self.admitted = 0
        self.deferred = 0
        self.shed_total = 0

    def admit(self, now: float) -> bool:
        """Spend one service token; False defers the tenant this round."""
        if self.bucket.try_take(now):
            self.admitted += 1
            return True
        self.deferred += 1
        return False

    def next_admission_at(self, now: float) -> float:
        return self.bucket.next_available_at(now)

    def shed(self, offered: Sequence[Tuple[str, int]]) -> List[Tuple[str, int]]:
        """Decide how many queued batches each tenant must drop.

        ``offered`` is ``(tenant, queue_depth)`` per tenant, in the
        supervisor's fixed scheduling order.  Every tenant above the high
        watermark sheds down to it (reject-newest: the dropped batches
        are the most recent arrivals).  Tenants with equal over-watermark
        excess are shed in an order drawn from the seeded RNG stream, so
        ties break reproducibly rather than by dict ordering accidents.
        Returns ``(tenant, batches_to_shed)`` pairs, shed order.
        """
        over = [
            (tenant, depth - self.config.high_watermark)
            for tenant, depth in offered
            if depth > self.config.high_watermark
        ]
        if not over:
            return []
        # group by excess so equally-overloaded tenants tiebreak by seed
        by_excess: dict = {}
        for tenant, excess in over:
            by_excess.setdefault(excess, []).append(tenant)
        decisions: List[Tuple[str, int]] = []
        for excess in sorted(by_excess, reverse=True):
            tied = by_excess[excess]
            order = self._rng.permutation(len(tied))
            for i in order:
                decisions.append((tied[int(i)], excess))
                self.shed_total += excess
        return decisions
