"""Per-tenant circuit breakers with graceful degradation.

The breaker watches the transport's health signals — dead-letter
quarantines, heavy retry pressure, and supervisor-contained crashes —
over a sliding window of recent steps.  Too many failures trip it OPEN,
which puts the tenant into *degraded mode*: the client is restricted to
cheap always-safe codecs (via the PR 1 demotion path) and the server
disables direct-on-compressed fast paths by forcing decode-first
execution.  Degraded service is slower but keeps delivering results
instead of burning retries on a hostile link.

After a cooldown (virtual seconds, per CSD007) the breaker goes
HALF_OPEN and lets one probe step run at full service; a clean probe
closes the breaker and restores normal mode, a failed probe re-opens it
with an escalated (capped) cooldown.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque

from ..errors import ServeError

CLOSED = "CLOSED"
OPEN = "OPEN"
HALF_OPEN = "HALF_OPEN"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recover thresholds (times are virtual seconds)."""

    #: failures within the sliding window that trip the breaker
    failure_threshold: int = 4
    #: number of recent steps the failure count is evaluated over
    window: int = 16
    #: a step needing this many transport attempts counts as a soft failure
    retry_pressure: int = 4
    #: OPEN -> HALF_OPEN cooldown after the first trip
    cooldown_s: float = 2.0
    #: cooldown multiplier applied on each re-trip, capped below
    cooldown_factor: float = 2.0
    cooldown_cap_s: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ServeError("failure_threshold must be >= 1")
        if self.window < self.failure_threshold:
            raise ServeError("window must be >= failure_threshold")
        if self.retry_pressure < 1:
            raise ServeError("retry_pressure must be >= 1")
        if self.cooldown_s <= 0 or not math.isfinite(self.cooldown_s):
            raise ServeError("cooldown_s must be positive and finite")
        if self.cooldown_factor < 1:
            raise ServeError("cooldown_factor must be >= 1")
        if self.cooldown_cap_s < self.cooldown_s:
            raise ServeError("cooldown_cap_s must be >= cooldown_s")


class CircuitBreaker:
    """CLOSED -> OPEN -> HALF_OPEN state machine over step outcomes."""

    def __init__(self, config: BreakerConfig):
        self.config = config
        self.state = CLOSED
        self.trips = 0
        self.recoveries = 0
        self._outcomes: Deque[bool] = deque(maxlen=config.window)
        self._cooldown = config.cooldown_s
        self._open_until = 0.0

    @property
    def degraded(self) -> bool:
        """Tenant should run in degraded mode while not CLOSED."""
        return self.state != CLOSED

    def _trip(self, now: float) -> None:
        self.state = OPEN
        self.trips += 1
        self._open_until = now + self._cooldown
        self._cooldown = min(
            self.config.cooldown_cap_s, self._cooldown * self.config.cooldown_factor
        )
        self._outcomes.clear()

    def record(self, now: float, failed: bool) -> None:
        """Feed one step outcome; may change state."""
        if self.state == HALF_OPEN:
            # the probe step decides the whole state
            if failed:
                self._trip(now)
            else:
                self.state = CLOSED
                self.recoveries += 1
                self._cooldown = self.config.cooldown_s
                self._outcomes.clear()
            return
        self._outcomes.append(failed)
        if (
            self.state == CLOSED
            and sum(self._outcomes) >= self.config.failure_threshold
        ):
            self._trip(now)

    def allow_probe(self, now: float) -> bool:
        """OPEN breakers transition to HALF_OPEN once cooled down."""
        if self.state == OPEN and now >= self._open_until:
            self.state = HALF_OPEN
            return True
        return self.state == HALF_OPEN

    def next_probe_at(self) -> float:
        """Virtual time when an OPEN breaker becomes probe-eligible."""
        return self._open_until if self.state == OPEN else 0.0
