"""Shared low-level helpers: exact-width integer packing and bit math.

CompressStreamDB stores compressed columns at *exact* byte widths (1..8
bytes per element) so that space accounting matches the paper's formulas,
while query kernels materialize the next NumPy-supported width for
vectorized scans.  The packing helpers here are used by the Null
Suppression, Dictionary, Base-Delta and aligned Elias codecs.
"""

from __future__ import annotations

import numpy as np

from .errors import CodecError

#: Byte widths NumPy can represent natively as integer dtypes.
NUMPY_WIDTHS = (1, 2, 4, 8)

_UNSIGNED_BY_WIDTH = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}
_SIGNED_BY_WIDTH = {1: np.int8, 2: np.int16, 4: np.int32, 8: np.int64}


def numpy_width(width: int) -> int:
    """Round an exact byte width up to the nearest NumPy-supported width."""
    if not 1 <= width <= 8:
        raise CodecError(f"byte width must be in [1, 8], got {width}")
    for w in NUMPY_WIDTHS:
        if w >= width:
            return w
    raise CodecError(f"unsupported byte width {width}")  # pragma: no cover


def unsigned_dtype(width: int) -> np.dtype:
    """Unsigned NumPy dtype able to hold ``width`` bytes."""
    return np.dtype(_UNSIGNED_BY_WIDTH[numpy_width(width)])


def signed_dtype(width: int) -> np.dtype:
    """Signed NumPy dtype able to hold ``width`` bytes."""
    return np.dtype(_SIGNED_BY_WIDTH[numpy_width(width)])


def bit_length(value: int) -> int:
    """Number of significant bits of a non-negative integer (0 -> 1)."""
    if value < 0:
        raise CodecError("bit_length expects a non-negative value")
    return max(int(value).bit_length(), 1)


def bytes_for_unsigned(max_value: int) -> int:
    """Minimum bytes needed to store a non-negative integer."""
    return (bit_length(int(max_value)) + 7) // 8


def bytes_for_signed(min_value: int, max_value: int) -> int:
    """Minimum bytes storing all of [min_value, max_value] in two's complement."""
    lo, hi = int(min_value), int(max_value)
    for width in range(1, 9):
        bound = 1 << (8 * width - 1)
        if -bound <= lo and hi < bound:
            return width
    raise CodecError(f"range [{min_value}, {max_value}] exceeds 8 bytes")


def bytes_for_range(min_value: int, max_value: int) -> int:
    """Minimum bytes for a column whose values span [min_value, max_value].

    Non-negative columns use the unsigned representation (classic leading
    zero suppression); columns with negatives use two's-complement
    narrowing, which preserves numeric values under sign extension.
    """
    if min_value >= 0:
        return bytes_for_unsigned(max_value)
    return bytes_for_signed(min_value, max_value)


def pack_int_array(
    values: np.ndarray, width: int, *, signed: bool = False
) -> np.ndarray:
    """Pack an int64 array into exactly ``width`` little-endian bytes/elem.

    Returns a ``uint8`` array of length ``len(values) * width``.  Signed
    packing truncates the two's-complement representation; values must fit
    in ``width`` bytes or a :class:`CodecError` is raised.
    """
    values = np.ascontiguousarray(values, dtype=np.int64)
    if width == 8:
        return values.view(np.uint8).copy()
    if signed:
        bound = np.int64(1) << np.int64(8 * width - 1)
        bad = (values < -bound) | (values >= bound)
    else:
        bad = (values < 0) | (values >= (np.int64(1) << np.int64(8 * width)))
    if bad.any():
        raise CodecError(f"value out of range for {width}-byte packing")
    as_bytes = values.view(np.uint8).reshape(-1, 8)
    return np.ascontiguousarray(as_bytes[:, :width]).reshape(-1)


def unpack_int_array(
    payload: np.ndarray, width: int, count: int, *, signed: bool = False
) -> np.ndarray:
    """Inverse of :func:`pack_int_array`; returns an int64 array."""
    payload = np.ascontiguousarray(payload, dtype=np.uint8)
    if payload.size != count * width:
        raise CodecError(
            f"payload has {payload.size} bytes, expected {count * width} "
            f"({count} elements x {width} bytes)"
        )
    if width == 8:
        return payload.view(np.int64).copy()
    wide = np.zeros((count, 8), dtype=np.uint8)
    wide[:, :width] = payload.reshape(count, width)
    if signed:
        # Sign-extend: replicate the top bit of the most significant stored
        # byte into the padding bytes.
        negative = (wide[:, width - 1] & 0x80).astype(bool)
        wide[negative, width:] = 0xFF
    return wide.reshape(-1).view(np.int64).copy()


def exact_nbytes(count: int, width: int) -> int:
    """Size in bytes of ``count`` elements packed at ``width`` bytes each."""
    return count * width
