"""CompressStreamDB: fine-grained adaptive stream processing without
decompression — a full reproduction of the ICDE 2023 paper.

Quickstart
----------
>>> from repro import CompressStreamDB, EngineConfig
>>> from repro.datasets import smart_grid, QUERIES
>>> q1 = QUERIES["q1"]
>>> engine = CompressStreamDB(q1.catalog, q1.text(slide=1024),
...                           EngineConfig(mode="adaptive"))
>>> report = engine.run(smart_grid.source(batch_size=8192, batches=4))
>>> report.space_saving > 0
True
"""

from .core.engine import CompressStreamDB, EngineConfig
from .core.cost_model import CostModel, StageEstimate, SystemParams
from .core.metrics import RunReport
from .errors import ReproError
from .net.channel import Channel
from .net.faults import FaultProfile, FaultReport, FaultyChannel
from .net.transport import ReliabilityConfig
from .reporting import (
    TextTable,
    compare_runs,
    fault_report_table,
    stage_breakdown_table,
)
from .stream.schema import Field, Schema

__version__ = "1.0.0"

__all__ = [
    "CompressStreamDB",
    "EngineConfig",
    "CostModel",
    "StageEstimate",
    "SystemParams",
    "RunReport",
    "ReproError",
    "Channel",
    "FaultProfile",
    "FaultReport",
    "FaultyChannel",
    "ReliabilityConfig",
    "TextTable",
    "compare_runs",
    "fault_report_table",
    "stage_breakdown_table",
    "Field",
    "Schema",
    "__version__",
]
