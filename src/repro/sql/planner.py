"""Query planner: binds parsed scripts to stream schemas and derives the
per-column direct-processing requirements of DESIGN.md §2.

Three plan shapes cover the dialect:

* :class:`WindowAggPlan` — single count-windowed source with optional
  group-by and aggregates (Q1, Q2, Q4, Q5, Q6);
* :class:`PassthroughPlan` — ``[range unbounded]`` per-tuple projection and
  selection, also used for derived streams (Q3's SegSpeedStr);
* :class:`JoinPlan` — sliding window ⋈ partition window equi-join with
  distinct output (Q3).

The planner computes a :class:`~repro.core.query_profile.QueryProfile`
whose :class:`ColumnUse` entries tell both the cost model and the server
which columns can be served directly by which codecs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # plans carry optimizer records without a module cycle
    from ..optimizer.info import OptimizerInfo

from ..compression.base import CAP_AFFINE, CAP_EQUALITY, CAP_ORDER
from ..core.query_profile import ColumnUse, QueryProfile
from ..errors import PlanningError
from ..stream.schema import KIND_FLOAT, KIND_INT, Field, Schema
from ..stream.window import (
    MODE_COUNT,
    MODE_PARTITION,
    MODE_TIME,
    MODE_UNBOUNDED,
    WindowSpec,
)
from .ast import (
    AggregateCall,
    BinaryOp,
    BoolExpr,
    BoolOp,
    ColumnRef,
    Comparison,
    Expr,
    JoinClause,
    Literal,
    Query,
    Script,
    SelectItem,
    SourceRef,
)
from .parser import parse

# ----- plan dataclasses ------------------------------------------------

OUT_KEY = "key"        # group-by key column
OUT_LAST = "last"      # non-aggregated column under windowing: last row
OUT_AGG = "aggregate"  # avg/sum/max/min/count
OUT_COLUMN = "column"  # plain per-tuple column (passthrough)
OUT_EXPR = "expr"      # arithmetic expression per tuple


@dataclass(frozen=True)
class OutputColumn:
    """One column of the query result."""

    name: str
    kind: str
    source_column: Optional[str] = None
    agg_func: Optional[str] = None
    expr: Optional[Expr] = None
    out_field: Field = Field("out")
    #: decimals of the *source* field: aggregates computed in the stored
    #: fixed-point domain are rescaled by 10**src_decimals at output time
    src_decimals: int = 0

    def __post_init__(self) -> None:
        if self.kind in (OUT_KEY, OUT_LAST, OUT_COLUMN) and not self.source_column:
            raise PlanningError(f"output {self.name!r} needs a source column")
        if self.kind == OUT_AGG and not self.agg_func:
            raise PlanningError(f"output {self.name!r} needs an aggregate function")
        if self.kind == OUT_EXPR and self.expr is None:
            raise PlanningError(f"output {self.name!r} needs an expression")


@dataclass(frozen=True)
class LiteralPredicate:
    """``column <op> literal`` in the stored integer domain."""

    column: str
    op: str
    literal: int


@dataclass(frozen=True)
class PredicateGroup:
    """AND/OR tree over literal predicates (evaluated as boolean masks)."""

    op: str  # "and" | "or"
    children: Tuple["PredicateNode", ...]
    #: set by the optimizer's selection-reorder rule on a top-level AND:
    #: the executor evaluates the conjuncts as a short-circuit cascade
    #: (each child sees only the survivors of the previous one), in the
    #: order given.  Only meaningful for ``op == "and"``.
    ordered: bool = False


PredicateNode = Union[LiteralPredicate, PredicateGroup]


@dataclass(frozen=True)
class HavingPredicate:
    """``<output> <op> literal`` over the converted (user-domain) results.

    ``output`` names either a select-list column or a hidden aggregate the
    planner added solely for the HAVING evaluation.
    """

    output: str
    op: str
    literal: float


@dataclass(frozen=True)
class HavingGroup:
    """AND/OR tree over having predicates (mirrors :class:`PredicateGroup`
    but evaluated on converted per-window result rows)."""

    op: str  # "and" | "or"
    children: Tuple["HavingNode", ...]


HavingNode = Union[HavingPredicate, HavingGroup]


@dataclass(frozen=True)
class OrderKey:
    """One resolved ORDER BY key: an output (possibly hidden) column."""

    output: str
    desc: bool = False


@dataclass
class WindowAggPlan:
    stream: str
    schema: Schema
    window: WindowSpec
    outputs: Tuple[OutputColumn, ...]
    group_keys: Tuple[str, ...]
    where: Optional[PredicateNode]
    profile: QueryProfile
    #: aggregates computed only to evaluate HAVING/ORDER BY, dropped from
    #: the visible results
    hidden_outputs: Tuple[OutputColumn, ...] = ()
    having: Optional[HavingNode] = None
    #: per-window sort keys; ties are broken on every visible column so
    #: the row order is deterministic across execution paths
    order_by: Tuple[OrderKey, ...] = ()
    #: per-window row cap, applied after ORDER BY
    limit: Optional[int] = None
    #: set by the optimizer's filter+aggregate fusion rule: the WHERE
    #: predicate is single-column on this column and the executor may
    #: evaluate it at run granularity, keeping the column run-structured
    #: through aggregation (falls back to row filtering when the batch
    #: carries no run view)
    fuse_column: str = ""
    #: optimizer decision record (rules fired, costs, digest); None when
    #: the plan never went through the optimizer
    opt: Optional["OptimizerInfo"] = None


@dataclass
class PassthroughPlan:
    stream: str
    schema: Schema
    outputs: Tuple[OutputColumn, ...]
    where: Optional[PredicateNode]
    distinct: bool
    profile: QueryProfile
    #: optimizer decision record; None when never optimized
    opt: Optional["OptimizerInfo"] = None

    @property
    def output_schema(self) -> Schema:
        return Schema([out.out_field for out in self.outputs])


@dataclass(frozen=True)
class JoinSide:
    """One partition-window side of the join.

    ``probe_column`` is the window-side column whose values probe this
    side's state; ``key_column`` is the side's partition-by column.  The
    legacy comma-form join has ``probe_column == key_column``; the
    explicit ``JOIN ... ON`` form may probe with a different column,
    which is what makes LEFT OUTER misses observable.
    """

    binding: str
    window: WindowSpec
    probe_column: str
    key_column: str
    outer: bool = False


@dataclass
class JoinPlan:
    stream: str                       # physical input stream
    schema: Schema                    # physical input schema
    derived: Optional[PassthroughPlan]  # applied per batch before the join
    join_schema: Schema               # schema the join sides see
    window: WindowSpec                # probe side A (count/time window)
    partition: WindowSpec             # first partition side (compat alias)
    join_key: str                     # first side's key (compat alias)
    outputs: Tuple[OutputColumn, ...]  # columns of the partition sides
    distinct: bool
    profile: QueryProfile
    #: all partition sides (multi-way joins have several)
    sides: Tuple[JoinSide, ...] = ()
    #: for each output, the index into ``sides`` it reads from
    output_sides: Tuple[int, ...] = ()
    #: optimizer decision record; None when never optimized
    opt: Optional["OptimizerInfo"] = None


Plan = Union[WindowAggPlan, PassthroughPlan, JoinPlan]


# ----- helpers ----------------------------------------------------------


def _merge_use(uses: Dict[str, ColumnUse], new: ColumnUse) -> None:
    if new.name in uses:
        uses[new.name] = uses[new.name].merge(new)
    else:
        uses[new.name] = new


def _expr_columns(expr: Expr) -> List[ColumnRef]:
    if isinstance(expr, ColumnRef):
        return [expr]
    if isinstance(expr, BinaryOp):
        return _expr_columns(expr.left) + _expr_columns(expr.right)
    if isinstance(expr, AggregateCall):
        return [expr.arg] if expr.arg else []
    return []


def _check_column(schema: Schema, ref: ColumnRef, context: str) -> Field:
    if ref.name not in schema:
        raise PlanningError(f"{context}: unknown column {ref.name!r} in {schema!r}")
    return schema[ref.name]


def _agg_output_field(func: str, src: Field, name: str) -> Field:
    if func == "count":
        return Field(name, KIND_INT, 8)
    if func == "avg":
        # averages of fixed-point ints are fractional
        return Field(
            name,
            KIND_FLOAT,
            8,
            decimals=max(src.decimals, 1) if src.kind == KIND_FLOAT else 1,
        )
    return Field(name, src.kind, src.size, decimals=src.decimals)


def _quantized_literal(value: Union[int, float], f: Field) -> int:
    """Map a query literal into the stored integer domain of a field."""
    if f.kind == KIND_FLOAT:
        scaled = value * f.scale
        rounded = int(round(scaled))
        if abs(scaled - rounded) > 1e-9:
            raise PlanningError(
                f"literal {value!r} is not representable with {f.decimals} "
                f"decimals of column {f.name!r}"
            )
        return rounded
    if isinstance(value, float) and not value.is_integer():
        raise PlanningError(
            f"fractional literal {value!r} on integer column {f.name!r}"
        )
    return int(value)


_CAP_BY_AGG = {
    "avg": frozenset({CAP_AFFINE}),
    "sum": frozenset({CAP_AFFINE}),
    "max": frozenset({CAP_ORDER}),
    "min": frozenset({CAP_ORDER}),
    "count": frozenset(),
}

_CAP_BY_COMPARE = {
    "==": frozenset({CAP_EQUALITY}),
    "!=": frozenset({CAP_EQUALITY}),
    "<": frozenset({CAP_ORDER}),
    "<=": frozenset({CAP_ORDER}),
    ">": frozenset({CAP_ORDER}),
    ">=": frozenset({CAP_ORDER}),
}


# ----- planner ------------------------------------------------------


class Planner:
    """Plans scripts against a catalog of stream schemas."""

    def __init__(self, catalog: Dict[str, Schema]):
        self.catalog = dict(catalog)

    def plan_text(self, text: str) -> Plan:
        return self.plan(parse(text))

    def plan(self, script: Script) -> Plan:
        catalog = dict(self.catalog)
        derived_plans: Dict[str, PassthroughPlan] = {}
        for derived in script.derived:
            plan = self._plan_passthrough_query(derived.query, catalog, derived.name)
            derived_plans[derived.name] = plan
            catalog[derived.name] = plan.output_schema
        main = script.main
        if main.joins:
            return self._plan_explicit_join(main, catalog, derived_plans)
        if len(main.sources) == 2:
            return self._plan_join(main, catalog, derived_plans)
        if len(main.sources) != 1:
            raise PlanningError("queries must read one or two sources")
        window = main.sources[0].window
        if window.mode == MODE_UNBOUNDED:
            if script.derived:
                raise PlanningError("derived streams must feed a windowed main query")
            return self._plan_passthrough_query(main, catalog, None)
        if window.mode not in (MODE_COUNT, MODE_TIME):
            raise PlanningError(
                "single-source main query needs a count or time window"
            )
        if script.derived:
            raise PlanningError(
                "derived streams are only supported with the join form of Q3"
            )
        return self._plan_window_agg(main, catalog)

    # ----- per-shape planning -------------------------------------------

    def _resolve_source(self, query: Query, catalog: Dict[str, Schema], idx: int = 0):
        source = query.sources[idx]
        if source.stream not in catalog:
            raise PlanningError(f"unknown stream {source.stream!r}")
        return source, catalog[source.stream]

    def _plan_window_agg(
        self, query: Query, catalog: Dict[str, Schema]
    ) -> WindowAggPlan:
        source, schema = self._resolve_source(query, catalog)
        if query.distinct:
            raise PlanningError("distinct is not supported with window aggregation")
        uses: Dict[str, ColumnUse] = {}
        if source.window.mode == MODE_TIME:
            tc = source.window.time_column
            f = _check_column(schema, ColumnRef(tc), "time window")
            if f.kind != KIND_INT:
                raise PlanningError(
                    f"time window column {tc!r} must be an integer field"
                )
            # the scheduler reads timestamp values to assign windows
            _merge_use(uses, ColumnUse(tc, needs_values=True))
        group_keys: List[str] = []
        for ref in query.group_by:
            _check_column(schema, ref, "group by")
            group_keys.append(ref.name)
            _merge_use(
                uses,
                ColumnUse(
                    ref.name, caps=frozenset({CAP_EQUALITY}), positional=True
                ),
            )

        outputs: List[OutputColumn] = []
        has_aggregate = False
        for item in query.items:
            outputs.append(
                self._plan_agg_item(item, schema, set(group_keys), uses)
            )
            has_aggregate = has_aggregate or outputs[-1].kind == OUT_AGG
        if not has_aggregate and not group_keys:
            raise PlanningError(
                "a count-windowed query needs aggregates or group by; "
                "use [range unbounded] for per-tuple projection"
            )
        where = self._plan_where(query.where, schema, uses)
        hidden: List[OutputColumn] = []
        having = self._plan_having(query.having, schema, outputs, hidden, uses)
        order_by = self._plan_order_by(query, schema, outputs, hidden, uses)
        profile = QueryProfile(column_uses=uses)
        return WindowAggPlan(
            stream=source.stream,
            schema=schema,
            window=source.window,
            outputs=tuple(outputs),
            group_keys=tuple(group_keys),
            where=where,
            profile=profile,
            hidden_outputs=tuple(hidden),
            having=having,
            order_by=order_by,
            limit=query.limit,
        )

    def _plan_having(
        self,
        condition: Optional[BoolExpr],
        schema: Schema,
        outputs: Sequence[OutputColumn],
        hidden: List[OutputColumn],
        uses: Dict[str, ColumnUse],
    ) -> Optional[HavingNode]:
        if condition is None:
            return None
        counter = [0]
        return self._plan_having_node(
            condition, schema, outputs, hidden, uses, counter
        )

    def _plan_having_node(
        self,
        condition: BoolExpr,
        schema: Schema,
        outputs: Sequence[OutputColumn],
        hidden: List[OutputColumn],
        uses: Dict[str, ColumnUse],
        counter: List[int],
    ) -> HavingNode:
        if isinstance(condition, BoolOp):
            return HavingGroup(
                op=condition.op,
                children=tuple(
                    self._plan_having_node(
                        item, schema, outputs, hidden, uses, counter
                    )
                    for item in condition.items
                ),
            )
        comp = condition
        by_name = {o.name: o for o in outputs}
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}
        left, right, op = comp.left, comp.right, comp.op
        if isinstance(left, Literal) and not isinstance(right, Literal):
            left, right, op = right, left, flip[op]
        if not isinstance(right, Literal):
            raise PlanningError("having compares an aggregate to a literal")
        index = counter[0]
        counter[0] += 1
        if isinstance(left, AggregateCall):
            target = self._agg_target(
                left, schema, outputs, hidden, uses, f"__having_{index}"
            )
        elif isinstance(left, ColumnRef) and left.name in by_name:
            target = left.name
        else:
            raise PlanningError(
                "having supports aggregates or select-list names; "
                f"got {left!s}"
            )
        return HavingPredicate(target, op, float(right.value))

    def _plan_order_by(
        self,
        query: Query,
        schema: Schema,
        outputs: Sequence[OutputColumn],
        hidden: List[OutputColumn],
        uses: Dict[str, ColumnUse],
    ) -> Tuple[OrderKey, ...]:
        if query.limit is not None and not query.order_by:
            raise PlanningError(
                "limit requires an order by clause (unordered truncation "
                "would be nondeterministic)"
            )
        by_name = {o.name for o in outputs}
        keys: List[OrderKey] = []
        for i, item in enumerate(query.order_by):
            expr = item.expr
            if (
                isinstance(expr, ColumnRef)
                and expr.table is None
                and expr.name in by_name
            ):
                target = expr.name
            elif isinstance(expr, AggregateCall):
                target = self._agg_target(
                    expr, schema, outputs, hidden, uses, f"__order_{i}"
                )
            else:
                raise PlanningError(
                    "order by supports select-list names or aggregates; "
                    f"got {expr!s}"
                )
            keys.append(OrderKey(output=target, desc=item.desc))
        return tuple(keys)

    def _agg_target(
        self,
        agg: AggregateCall,
        schema: Schema,
        outputs: Sequence[OutputColumn],
        hidden: List[OutputColumn],
        uses: Dict[str, ColumnUse],
        name: str,
    ) -> str:
        wanted_col = agg.arg.name if agg.arg else None
        for o in list(outputs) + hidden:
            if (
                o.kind == OUT_AGG
                and o.agg_func == agg.func
                and o.source_column == wanted_col
            ):
                return o.name
        # no matching select item: compute a hidden aggregate
        src_field = Field(name, KIND_INT, 8)
        if agg.arg is not None:
            src_field = _check_column(schema, agg.arg, f"aggregate {agg.func}")
            _merge_use(uses, ColumnUse(agg.arg.name, caps=_CAP_BY_AGG[agg.func]))
        hidden.append(
            OutputColumn(
                name=name,
                kind=OUT_AGG,
                source_column=wanted_col,
                agg_func=agg.func,
                out_field=_agg_output_field(agg.func, src_field, name),
                src_decimals=src_field.decimals,
            )
        )
        return name

    def _plan_agg_item(
        self,
        item: SelectItem,
        schema: Schema,
        group_keys: set,
        uses: Dict[str, ColumnUse],
    ) -> OutputColumn:
        expr = item.expr
        name = item.output_name
        if isinstance(expr, AggregateCall):
            src_field = Field(name, KIND_INT, 8)
            if expr.arg is not None:
                src_field = _check_column(schema, expr.arg, f"aggregate {expr.func}")
                _merge_use(uses, ColumnUse(expr.arg.name, caps=_CAP_BY_AGG[expr.func]))
            return OutputColumn(
                name=name,
                kind=OUT_AGG,
                source_column=expr.arg.name if expr.arg else None,
                agg_func=expr.func,
                out_field=_agg_output_field(expr.func, src_field, name),
                src_decimals=src_field.decimals,
            )
        if isinstance(expr, ColumnRef):
            f = _check_column(schema, expr, "select")
            kind = OUT_KEY if expr.name in group_keys else OUT_LAST
            _merge_use(uses, ColumnUse(expr.name, positional=True))
            return OutputColumn(
                name=name,
                kind=kind,
                source_column=expr.name,
                out_field=Field(name, f.kind, f.size, decimals=f.decimals),
                src_decimals=f.decimals,
            )
        raise PlanningError(
            "window aggregation supports plain columns and aggregates; "
            f"got expression {expr!s}"
        )

    def _plan_passthrough_query(
        self, query: Query, catalog: Dict[str, Schema], derived_name: Optional[str]
    ) -> PassthroughPlan:
        source, schema = self._resolve_source(query, catalog)
        if source.window.mode != MODE_UNBOUNDED:
            raise PlanningError("passthrough queries use [range unbounded]")
        if query.group_by:
            raise PlanningError("group by requires a count window")
        if query.having is not None:
            raise PlanningError("having requires aggregation over a count window")
        if query.joins:
            raise PlanningError("join clauses require a windowed main query")
        if query.order_by or query.limit is not None:
            raise PlanningError(
                "order by / limit apply to windowed aggregation results"
            )
        uses: Dict[str, ColumnUse] = {}
        outputs: List[OutputColumn] = []
        for item in query.items:
            expr = item.expr
            name = item.output_name
            if isinstance(expr, AggregateCall):
                raise PlanningError("aggregates require a count window")
            if isinstance(expr, ColumnRef):
                f = _check_column(schema, expr, "select")
                if query.distinct:
                    # dedup runs on codes; only survivors are decoded
                    use = ColumnUse(
                        expr.name, caps=frozenset({CAP_EQUALITY}), positional=True
                    )
                else:
                    # every surviving row reaches the output (or the derived
                    # stream buffer), so the values themselves are needed
                    use = ColumnUse(expr.name, needs_values=True)
                _merge_use(uses, use)
                outputs.append(
                    OutputColumn(
                        name=name,
                        kind=OUT_COLUMN,
                        source_column=expr.name,
                        out_field=Field(name, f.kind, f.size, decimals=f.decimals),
                        src_decimals=f.decimals,
                    )
                )
                continue
            # arithmetic expression: needs values of every referenced column
            refs = _expr_columns(expr)
            if not refs:
                raise PlanningError(f"constant select item {expr!s} is not supported")
            for ref in refs:
                f = _check_column(schema, ref, "select expression")
                if f.kind != KIND_INT:
                    raise PlanningError(
                        f"arithmetic on float column {ref.name!r} is not supported; "
                        "aggregate it instead"
                    )
                _merge_use(uses, ColumnUse(ref.name, needs_values=True))
            outputs.append(
                OutputColumn(
                    name=name,
                    kind=OUT_EXPR,
                    expr=expr,
                    out_field=Field(name, KIND_INT, 8),
                )
            )
        where = self._plan_where(query.where, schema, uses)
        return PassthroughPlan(
            stream=source.stream,
            schema=schema,
            outputs=tuple(outputs),
            where=where,
            distinct=query.distinct,
            profile=QueryProfile(column_uses=uses),
        )

    def _plan_where(
        self,
        condition: Optional[BoolExpr],
        schema: Schema,
        uses: Dict[str, ColumnUse],
    ) -> Optional[PredicateNode]:
        if condition is None:
            return None
        if isinstance(condition, BoolOp):
            return PredicateGroup(
                op=condition.op,
                children=tuple(
                    self._plan_where(item, schema, uses) for item in condition.items
                ),
            )
        comp = condition
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}
        left, right, op = comp.left, comp.right, comp.op
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            left, right, op = right, left, flip[op]
        if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
            raise PlanningError(
                "where supports column-vs-literal predicates here; "
                "column-vs-column equality belongs to the join form"
            )
        f = _check_column(schema, left, "where")
        _merge_use(uses, ColumnUse(left.name, caps=_CAP_BY_COMPARE[op]))
        return LiteralPredicate(left.name, op, _quantized_literal(right.value, f))

    def _plan_join(
        self,
        query: Query,
        catalog: Dict[str, Schema],
        derived_plans: Dict[str, PassthroughPlan],
    ) -> JoinPlan:
        first, second = query.sources
        if first.stream != second.stream:
            raise PlanningError("the join form requires two windows of one stream")
        if first.stream not in catalog:
            raise PlanningError(f"unknown stream {first.stream!r}")
        join_schema = catalog[first.stream]
        sliding_modes = (MODE_COUNT, MODE_TIME)
        if first.window.mode in sliding_modes and second.window.mode == MODE_PARTITION:
            window_src, partition_src = first, second
        elif (
            first.window.mode == MODE_PARTITION and second.window.mode in sliding_modes
        ):
            window_src, partition_src = second, first
        else:
            raise PlanningError(
                "the join form needs one count/time window and one partition window"
            )
        if not isinstance(query.where, Comparison):
            raise PlanningError("the join form needs exactly one join predicate")
        if query.having is not None:
            raise PlanningError("having is not supported on the join form")
        if query.order_by or query.limit is not None:
            raise PlanningError(
                "order by / limit apply to windowed aggregation results"
            )
        comp = query.where
        if comp.op != "==" or not (
            isinstance(comp.left, ColumnRef) and isinstance(comp.right, ColumnRef)
        ):
            raise PlanningError("the join predicate must be column == column")
        sides = {window_src.binding, partition_src.binding}
        tables = {comp.left.table, comp.right.table}
        if comp.left.name != comp.right.name or tables != sides:
            raise PlanningError(
                "the join predicate must equate the same column of both sides"
            )
        join_key = comp.left.name
        if join_key != partition_src.window.partition_by:
            raise PlanningError("the join key must be the partition-by column")
        _check_column(join_schema, ColumnRef(join_key), "join key")

        outputs: List[OutputColumn] = []
        for item in query.items:
            expr = item.expr
            if not isinstance(expr, ColumnRef):
                raise PlanningError("the join form selects plain columns only")
            if expr.table is not None and expr.table != partition_src.binding:
                raise PlanningError(
                    "the join form outputs columns of the partition side "
                    f"({partition_src.binding!r}); got {expr!s}"
                )
            f = _check_column(join_schema, expr, "select")
            outputs.append(
                OutputColumn(
                    name=item.output_name,
                    kind=OUT_COLUMN,
                    source_column=expr.name,
                    out_field=Field(
                        item.output_name, f.kind, f.size, decimals=f.decimals
                    ),
                    src_decimals=f.decimals,
                )
            )

        if window_src.window.mode == MODE_TIME:
            tc = window_src.window.time_column
            f = _check_column(join_schema, ColumnRef(tc), "join time window")
            if f.kind != KIND_INT:
                raise PlanningError(
                    f"time window column {tc!r} must be an integer field"
                )
        derived = derived_plans.get(first.stream)
        if derived is not None:
            physical_stream = derived.stream
            physical_schema = derived.schema
            profile = derived.profile
        else:
            physical_stream = first.stream
            physical_schema = join_schema
            # Without a derived projection the join runs on values of the
            # referenced columns directly.
            uses: Dict[str, ColumnUse] = {}
            for out in outputs:
                _merge_use(uses, ColumnUse(out.source_column, needs_values=True))
            _merge_use(uses, ColumnUse(join_key, needs_values=True))
            if window_src.window.mode == MODE_TIME:
                _merge_use(
                    uses,
                    ColumnUse(window_src.window.time_column, needs_values=True),
                )
            profile = QueryProfile(column_uses=uses)
        return JoinPlan(
            stream=physical_stream,
            schema=physical_schema,
            derived=derived,
            join_schema=join_schema,
            window=window_src.window,
            partition=partition_src.window,
            join_key=join_key,
            outputs=tuple(outputs),
            distinct=query.distinct,
            profile=profile,
            sides=(
                JoinSide(
                    binding=partition_src.binding,
                    window=partition_src.window,
                    probe_column=join_key,
                    key_column=join_key,
                    outer=False,
                ),
            ),
            output_sides=(0,) * len(outputs),
        )

    def _plan_explicit_join(
        self,
        query: Query,
        catalog: Dict[str, Schema],
        derived_plans: Dict[str, PassthroughPlan],
    ) -> JoinPlan:
        """Plan the explicit ``[LEFT] JOIN ... ON`` form (multi-way, outer).

        One count/time-windowed probe source joins one or more
        ``[partition by k rows 1]`` sides of the same stream.  Each ON
        predicate equates a probe-side column with the side's partition
        key; misses on a LEFT side emit the probe value for the key
        column and NaN for its other columns.
        """
        if len(query.sources) != 1:
            raise PlanningError(
                "explicit join clauses take a single windowed FROM source"
            )
        if query.where is not None:
            raise PlanningError(
                "the explicit join form takes its predicates in ON clauses, "
                "not WHERE"
            )
        if query.having is not None or query.group_by:
            raise PlanningError("having/group by are not supported on joins")
        if query.order_by or query.limit is not None:
            raise PlanningError(
                "order by / limit apply to windowed aggregation results"
            )
        probe_src = query.sources[0]
        if probe_src.window.mode not in (MODE_COUNT, MODE_TIME):
            raise PlanningError(
                "the probe side of a join needs a count or time window"
            )
        if probe_src.stream not in catalog:
            raise PlanningError(f"unknown stream {probe_src.stream!r}")
        join_schema = catalog[probe_src.stream]

        bindings = {probe_src.binding}
        sides: List[JoinSide] = []
        for clause in query.joins:
            src = clause.source
            if src.stream != probe_src.stream:
                raise PlanningError(
                    "join sides must window the same stream as the probe "
                    f"side; got {src.stream!r}"
                )
            if src.window.mode != MODE_PARTITION:
                raise PlanningError(
                    "join sides need a [partition by <key> rows 1] window"
                )
            if src.window.rows != 1:
                raise PlanningError(
                    "explicit join sides keep the latest row only "
                    "([partition by <key> rows 1])"
                )
            if src.binding in bindings:
                raise PlanningError(
                    f"duplicate source binding {src.binding!r} in join"
                )
            bindings.add(src.binding)
            sides.append(
                self._plan_join_side(clause, probe_src, join_schema)
            )

        outputs: List[OutputColumn] = []
        output_sides: List[int] = []
        by_binding = {side.binding: i for i, side in enumerate(sides)}
        for item in query.items:
            expr = item.expr
            if not isinstance(expr, ColumnRef):
                raise PlanningError("the join form selects plain columns only")
            if expr.table is None:
                if len(sides) != 1:
                    raise PlanningError(
                        "multi-way joins need side-qualified output columns; "
                        f"got {expr!s}"
                    )
                side_idx = 0
            elif expr.table in by_binding:
                side_idx = by_binding[expr.table]
            else:
                raise PlanningError(
                    "the join form outputs columns of the partition sides; "
                    f"got {expr!s}"
                )
            f = _check_column(join_schema, expr, "select")
            side = sides[side_idx]
            name = item.output_name
            if side.outer and expr.name != side.key_column:
                # misses fill with NaN, so the output widens to float
                out_field = Field(name, KIND_FLOAT, 8, decimals=f.decimals)
            else:
                out_field = Field(name, f.kind, f.size, decimals=f.decimals)
            outputs.append(
                OutputColumn(
                    name=name,
                    kind=OUT_COLUMN,
                    source_column=expr.name,
                    out_field=out_field,
                    src_decimals=f.decimals,
                )
            )
            output_sides.append(side_idx)

        if probe_src.window.mode == MODE_TIME:
            tc = probe_src.window.time_column
            f = _check_column(join_schema, ColumnRef(tc), "join time window")
            if f.kind != KIND_INT:
                raise PlanningError(
                    f"time window column {tc!r} must be an integer field"
                )
        derived = derived_plans.get(probe_src.stream)
        if derived is not None:
            physical_stream = derived.stream
            physical_schema = derived.schema
            profile = derived.profile
        else:
            physical_stream = probe_src.stream
            physical_schema = join_schema
            uses: Dict[str, ColumnUse] = {}
            for out in outputs:
                _merge_use(uses, ColumnUse(out.source_column, needs_values=True))
            for side in sides:
                _merge_use(uses, ColumnUse(side.probe_column, needs_values=True))
                _merge_use(uses, ColumnUse(side.key_column, needs_values=True))
            if probe_src.window.mode == MODE_TIME:
                _merge_use(
                    uses,
                    ColumnUse(probe_src.window.time_column, needs_values=True),
                )
            profile = QueryProfile(column_uses=uses)
        return JoinPlan(
            stream=physical_stream,
            schema=physical_schema,
            derived=derived,
            join_schema=join_schema,
            window=probe_src.window,
            partition=sides[0].window,
            join_key=sides[0].key_column,
            outputs=tuple(outputs),
            distinct=query.distinct,
            profile=profile,
            sides=tuple(sides),
            output_sides=tuple(output_sides),
        )

    def _plan_join_side(
        self, clause: JoinClause, probe_src: SourceRef, join_schema: Schema
    ) -> JoinSide:
        src = clause.source
        comp = clause.on
        if comp.op != "==" or not (
            isinstance(comp.left, ColumnRef) and isinstance(comp.right, ColumnRef)
        ):
            raise PlanningError("the ON predicate must be column == column")
        refs = {comp.left, comp.right}
        side_refs = [r for r in refs if r.table == src.binding]
        probe_refs = [
            r for r in refs if r.table in (None, probe_src.binding) and r not in side_refs
        ]
        if len(side_refs) != 1 or len(probe_refs) != 1:
            raise PlanningError(
                "the ON predicate must equate a probe-side column with the "
                f"joined side's key; got {comp.left!s} == {comp.right!s}"
            )
        key_ref, probe_ref = side_refs[0], probe_refs[0]
        if key_ref.name != src.window.partition_by:
            raise PlanningError(
                f"the side of {src.binding!r} must join on its partition-by "
                f"column {src.window.partition_by!r}; got {key_ref.name!r}"
            )
        kf = _check_column(join_schema, ColumnRef(key_ref.name), "join key")
        pf = _check_column(join_schema, ColumnRef(probe_ref.name), "join probe")
        if (pf.kind, pf.decimals) != (kf.kind, kf.decimals):
            raise PlanningError(
                f"join compares columns of mismatched types: "
                f"{probe_ref.name!r} vs {key_ref.name!r}"
            )
        return JoinSide(
            binding=src.binding,
            window=src.window,
            probe_column=probe_ref.name,
            key_column=key_ref.name,
            outer=clause.outer,
        )


def plan_query(
    text: str, catalog: Dict[str, Schema], optimize: bool = False
) -> Plan:
    """Parse and plan a streaming SQL script in one call.

    ``optimize=True`` additionally runs the plan through the rule-based
    optimizer (:mod:`repro.optimizer`) with catalogue defaults — no
    codec hint, no statistics.  The engine threads richer context
    through :func:`repro.optimizer.plan_for_engine` instead.
    """
    if optimize:
        from ..optimizer import plan_for_engine  # deferred: module cycle

        return plan_for_engine(catalog, text, optimize=True)
    return Planner(catalog).plan_text(text)
