"""Recursive-descent parser for the streaming SQL dialect of Table III.

Grammar (case-insensitive keywords)::

    script      := { "(" query ")" AS ident } query
    query       := SELECT [DISTINCT] item ("," item)*
                   FROM source ("," source)*
                   { [LEFT [OUTER]] JOIN source ON comparison }
                   [WHERE condition]
                   [GROUP BY colref ("," colref)*]
                   [HAVING condition]
                   [ORDER BY orderitem ("," orderitem)*]
                   [LIMIT integer]
    condition   := andcond (OR andcond)*
    andcond     := comparison (AND comparison)*
    orderitem   := expr [ASC | DESC]
    item        := expr [AS ident]
    source      := ident window [AS ident]
    window      := "[" RANGE (number | UNBOUNDED) [SLIDE number] "]"
                 | "[" PARTITION BY colref ROWS number "]"
    comparison  := expr (== | = | != | < | <= | > | >=) expr
    expr        := term ((+|-) term)*
    term        := factor ((*|/) factor)*
    factor      := number | aggregate | colref | "(" expr ")"
    aggregate   := (AVG|SUM|MAX|MIN|COUNT) "(" (colref | "*") ")"
    colref      := ident ["." ident]

Errors carry the token's line/column and the offending lexeme, so a
failure in the middle of a multi-line query points at its source.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import SQLSyntaxError
from ..stream.window import WindowSpec
from .ast import (
    AggregateCall,
    BinaryOp,
    BoolExpr,
    BoolOp,
    ColumnRef,
    Comparison,
    DerivedStream,
    Expr,
    JoinClause,
    Literal,
    OrderItem,
    Query,
    Script,
    SelectItem,
    SourceRef,
)
from .lexer import EOF, IDENT, NUMBER, SYMBOL, Token, tokenize

_AGG_KEYWORDS = ("AVG", "SUM", "MAX", "MIN", "COUNT")
_COMPARE_OPS = ("==", "=", "!=", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.i = 0

    # ----- token helpers ---------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.i]

    def advance(self) -> Token:
        tok = self.cur
        self.i += 1
        return tok

    def error(self, message: str) -> SQLSyntaxError:
        tok = self.cur
        lexeme = tok.value if tok.kind != EOF else "<end of input>"
        return SQLSyntaxError(
            f"{message} at line {tok.line}, column {tok.column} "
            f"(near {lexeme!r})",
            position=tok.pos,
            line=tok.line,
            column=tok.column,
        )

    def accept_symbol(self, sym: str) -> bool:
        if self.cur.kind == SYMBOL and self.cur.value == sym:
            self.i += 1
            return True
        return False

    def expect_symbol(self, sym: str) -> None:
        if not self.accept_symbol(sym):
            raise self.error(f"expected {sym!r}, found {self.cur.value!r}")

    def accept_keyword(self, word: str) -> bool:
        if self.cur.is_keyword(word):
            self.i += 1
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word}, found {self.cur.value!r}")

    def expect_ident(self) -> str:
        if self.cur.kind != IDENT:
            raise self.error(f"expected identifier, found {self.cur.value!r}")
        return self.advance().value

    def expect_int(self) -> int:
        if self.cur.kind != NUMBER or "." in self.cur.value:
            raise self.error(f"expected integer, found {self.cur.value!r}")
        return int(self.advance().value)

    # ----- grammar ----------------------------------------------------

    def parse_script(self) -> Script:
        derived: List[DerivedStream] = []
        while self.cur.kind == SYMBOL and self.cur.value == "(":
            mark = self.i
            self.advance()
            if not self.cur.is_keyword("SELECT"):
                self.i = mark
                break
            query = self.parse_query()
            self.expect_symbol(")")
            self.expect_keyword("AS")
            name = self.expect_ident()
            derived.append(DerivedStream(name=name, query=query))
        main = self.parse_query()
        if self.cur.kind != EOF:
            raise self.error(f"unexpected trailing input {self.cur.value!r}")
        return Script(derived=tuple(derived), main=main)

    def parse_query(self) -> Query:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items = [self.parse_select_item()]
        while self.accept_symbol(","):
            items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        sources = [self.parse_source()]
        while self.accept_symbol(","):
            sources.append(self.parse_source())
        joins: List[JoinClause] = []
        while self.cur.is_keyword("JOIN") or self.cur.is_keyword("LEFT"):
            joins.append(self.parse_join_clause())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_condition()
        group_by: List[ColumnRef] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_colref())
            while self.accept_symbol(","):
                group_by.append(self.parse_colref())
        having: Optional[BoolExpr] = None
        if self.accept_keyword("HAVING"):
            having = self.parse_condition()
        order_by: List[OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept_symbol(","):
                order_by.append(self.parse_order_item())
        limit: Optional[int] = None
        if self.accept_keyword("LIMIT"):
            bad = (
                self.cur.kind != NUMBER
                or "." in self.cur.value
                or int(self.cur.value) < 1
            )
            if bad:
                raise self.error(
                    f"limit expects a positive integer, found {self.cur.value!r}"
                )
            limit = int(self.advance().value)
        return Query(
            items=tuple(items),
            sources=tuple(sources),
            where=where,
            group_by=tuple(group_by),
            having=having,
            distinct=distinct,
            joins=tuple(joins),
            order_by=tuple(order_by),
            limit=limit,
        )

    def parse_join_clause(self) -> JoinClause:
        outer = False
        if self.accept_keyword("LEFT"):
            self.accept_keyword("OUTER")  # optional noise word
            outer = True
        self.expect_keyword("JOIN")
        source = self.parse_source()
        self.expect_keyword("ON")
        on = self.parse_comparison()
        return JoinClause(source=source, on=on, outer=outer)

    def parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        desc = False
        if self.accept_keyword("DESC"):
            desc = True
        else:
            self.accept_keyword("ASC")
        return OrderItem(expr=expr, desc=desc)

    def parse_condition(self) -> "BoolExpr":
        """OR of ANDs of comparisons (AND binds tighter, as in SQL)."""
        terms = [self.parse_and_condition()]
        while self.accept_keyword("OR"):
            terms.append(self.parse_and_condition())
        if len(terms) == 1:
            return terms[0]
        return BoolOp(op="or", items=tuple(terms))

    def parse_and_condition(self) -> "BoolExpr":
        terms = [self.parse_comparison()]
        while self.accept_keyword("AND"):
            terms.append(self.parse_comparison())
        if len(terms) == 1:
            return terms[0]
        return BoolOp(op="and", items=tuple(terms))

    def parse_select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias: Optional[str] = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        return SelectItem(expr=expr, alias=alias)

    def parse_source(self) -> SourceRef:
        stream = self.expect_ident()
        window = self.parse_window()
        alias: Optional[str] = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        return SourceRef(stream=stream, window=window, alias=alias)

    def parse_window(self) -> WindowSpec:
        self.expect_symbol("[")
        if self.accept_keyword("PARTITION"):
            self.expect_keyword("BY")
            key = self.parse_colref()
            self.expect_keyword("ROWS")
            rows = self.expect_int()
            self.expect_symbol("]")
            return WindowSpec.partition(key.name, rows)
        self.expect_keyword("RANGE")
        if self.accept_keyword("UNBOUNDED"):
            self.expect_symbol("]")
            return WindowSpec.unbounded()
        size = self.expect_int()
        time_based = self.accept_keyword("SECONDS")
        slide = 1
        if self.accept_keyword("SLIDE"):
            slide = self.expect_int()
            if time_based:
                self.accept_keyword("SECONDS")  # optional unit echo
        time_column = "timestamp"
        if self.accept_keyword("ON"):
            if not time_based:
                raise self.error("ON <column> applies to time windows only")
            time_column = self.expect_ident()
        self.expect_symbol("]")
        if time_based:
            return WindowSpec.time(size, slide, time_column)
        return WindowSpec.count(size, slide)

    def parse_comparison(self) -> Comparison:
        left = self.parse_expr()
        if self.cur.kind != SYMBOL or self.cur.value not in _COMPARE_OPS:
            raise self.error(f"expected comparison operator, found {self.cur.value!r}")
        op = self.advance().value
        if op == "=":
            op = "=="
        right = self.parse_expr()
        return Comparison(op=op, left=left, right=right)

    def parse_expr(self) -> Expr:
        node = self.parse_term()
        while self.cur.kind == SYMBOL and self.cur.value in ("+", "-"):
            op = self.advance().value
            node = BinaryOp(op=op, left=node, right=self.parse_term())
        return node

    def parse_term(self) -> Expr:
        node = self.parse_factor()
        while self.cur.kind == SYMBOL and self.cur.value in ("*", "/"):
            op = self.advance().value
            node = BinaryOp(op=op, left=node, right=self.parse_factor())
        return node

    def parse_factor(self) -> Expr:
        if self.accept_symbol("-"):
            inner = self.parse_factor()
            if isinstance(inner, Literal):
                return Literal(-inner.value)
            return BinaryOp(op="-", left=Literal(0), right=inner)
        if self.cur.kind == NUMBER:
            raw = self.advance().value
            return Literal(float(raw) if "." in raw else int(raw))
        if self.accept_symbol("("):
            node = self.parse_expr()
            self.expect_symbol(")")
            return node
        if self.cur.kind == IDENT and self.cur.value.upper() in _AGG_KEYWORDS:
            func = self.advance().value.lower()
            self.expect_symbol("(")
            arg: Optional[ColumnRef] = None
            if not self.accept_symbol("*"):
                arg = self.parse_colref()
            self.expect_symbol(")")
            if func != "count" and arg is None:
                raise self.error(f"{func}(*) is not supported")
            return AggregateCall(func=func, arg=arg)
        return self.parse_colref()

    def parse_colref(self) -> ColumnRef:
        first = self.expect_ident()
        if self.accept_symbol("."):
            second = self.expect_ident()
            return ColumnRef(name=second, table=first)
        return ColumnRef(name=first)


def parse(text: str) -> Script:
    """Parse a streaming SQL script (derived streams + main query)."""
    return _Parser(text).parse_script()


def parse_query(text: str) -> Query:
    """Parse a single query (no derived-stream prefix)."""
    script = parse(text)
    if script.derived:
        raise SQLSyntaxError("expected a single query without derived streams")
    return script.main
