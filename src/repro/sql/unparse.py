"""AST -> SQL text rendering (the inverse of :mod:`.parser`).

The oracle's workload generator builds queries as :mod:`.ast` nodes and
renders them with :func:`to_sql` before feeding them to the engine, so
every generated case exercises the full lexer -> parser -> planner path
exactly like user-supplied SQL.  Rendering is loss-free for every AST the
parser can produce: ``parse(to_sql(script))`` returns an equal tree
(checked by ``tests/test_oracle.py``).

Boolean conditions are rendered without parentheses — the grammar has
none — so ``BoolOp`` trees must be in the parser's or-of-ands shape:
an ``or`` node may contain comparisons and ``and`` nodes, an ``and`` node
only comparisons.
"""

from __future__ import annotations

from typing import Union

from ..errors import PlanningError
from ..stream.window import (
    MODE_COUNT,
    MODE_PARTITION,
    MODE_TIME,
    MODE_UNBOUNDED,
    WindowSpec,
)
from .ast import (
    AggregateCall,
    BinaryOp,
    BoolExpr,
    BoolOp,
    ColumnRef,
    Comparison,
    Expr,
    JoinClause,
    Literal,
    OrderItem,
    Query,
    Script,
    SelectItem,
    SourceRef,
)


def expr_to_sql(expr: Expr) -> str:
    """Render an arithmetic/aggregate expression."""
    if isinstance(expr, Literal):
        return str(expr.value)
    if isinstance(expr, ColumnRef):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, AggregateCall):
        arg = expr_to_sql(expr.arg) if expr.arg is not None else "*"
        return f"{expr.func}({arg})"
    if isinstance(expr, BinaryOp):
        return f"({expr_to_sql(expr.left)} {expr.op} {expr_to_sql(expr.right)})"
    raise PlanningError(f"cannot render expression {expr!r}")


def window_to_sql(window: WindowSpec) -> str:
    """Render a window clause in the Table III bracket syntax."""
    if window.mode == MODE_UNBOUNDED:
        return "[range unbounded]"
    if window.mode == MODE_COUNT:
        return f"[range {window.size} slide {window.slide}]"
    if window.mode == MODE_TIME:
        return (
            f"[range {window.size} seconds slide {window.slide} "
            f"on {window.time_column}]"
        )
    if window.mode == MODE_PARTITION:
        return f"[partition by {window.partition_by} rows {window.rows}]"
    raise PlanningError(f"cannot render window mode {window.mode!r}")


def condition_to_sql(condition: BoolExpr) -> str:
    """Render a WHERE condition (must be in or-of-ands shape)."""
    if isinstance(condition, Comparison):
        return (
            f"{expr_to_sql(condition.left)} {condition.op} "
            f"{expr_to_sql(condition.right)}"
        )
    if isinstance(condition, BoolOp):
        if condition.op == "and":
            for item in condition.items:
                if not isinstance(item, Comparison):
                    raise PlanningError(
                        "the grammar cannot express OR nested inside AND"
                    )
        joiner = f" {condition.op} "
        return joiner.join(condition_to_sql(item) for item in condition.items)
    raise PlanningError(f"cannot render condition {condition!r}")


def _item_to_sql(item: SelectItem) -> str:
    text = expr_to_sql(item.expr)
    return f"{text} as {item.alias}" if item.alias else text


def _source_to_sql(source: SourceRef) -> str:
    text = f"{source.stream} {window_to_sql(source.window)}"
    return f"{text} as {source.alias}" if source.alias else text


def _join_to_sql(join: JoinClause) -> str:
    kw = "left join" if join.outer else "join"
    return f"{kw} {_source_to_sql(join.source)} on {condition_to_sql(join.on)}"


def _order_item_to_sql(item: OrderItem) -> str:
    text = expr_to_sql(item.expr)
    return f"{text} desc" if item.desc else text


def query_to_sql(query: Query) -> str:
    """Render one query (no derived-stream prefix)."""
    parts = ["select"]
    if query.distinct:
        parts.append("distinct")
    parts.append(", ".join(_item_to_sql(item) for item in query.items))
    parts.append("from")
    parts.append(", ".join(_source_to_sql(src) for src in query.sources))
    for join in query.joins:
        parts.append(_join_to_sql(join))
    if query.where is not None:
        parts.append("where")
        parts.append(condition_to_sql(query.where))
    if query.group_by:
        parts.append("group by")
        parts.append(", ".join(expr_to_sql(ref) for ref in query.group_by))
    if query.having is not None:
        parts.append("having")
        parts.append(condition_to_sql(query.having))
    if query.order_by:
        parts.append("order by")
        parts.append(
            ", ".join(_order_item_to_sql(item) for item in query.order_by)
        )
    if query.limit is not None:
        parts.append(f"limit {query.limit}")
    return " ".join(parts)


def to_sql(node: Union[Script, Query]) -> str:
    """Render a script or a bare query back to parseable SQL text."""
    if isinstance(node, Query):
        return query_to_sql(node)
    if isinstance(node, Script):
        prefix = "".join(
            f"( {query_to_sql(d.query)} ) as {d.name} " for d in node.derived
        )
        return prefix + query_to_sql(node.main)
    raise PlanningError(f"cannot render {type(node).__name__}")
