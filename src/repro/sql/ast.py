"""Abstract syntax tree for the streaming SQL dialect (Table III)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..stream.window import WindowSpec


@dataclass(frozen=True)
class ColumnRef:
    """``name`` or ``alias.name``."""

    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal:
    value: Union[int, float]

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BinaryOp:
    """Arithmetic: + - * / (integer semantics, / floors)."""

    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class AggregateCall:
    """avg/sum/max/min/count over a column (count may omit the column)."""

    func: str
    arg: Optional[ColumnRef]

    def __str__(self) -> str:
        return f"{self.func}({self.arg if self.arg else '*'})"


Expr = Union[ColumnRef, Literal, BinaryOp, AggregateCall]


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        if isinstance(self.expr, AggregateCall):
            arg = self.expr.arg.name if self.expr.arg else "all"
            return f"{self.expr.func}_{arg}"
        return str(self.expr)


@dataclass(frozen=True)
class Comparison:
    op: str  # ==, !=, <, <=, >, >=
    left: Expr
    right: Expr


@dataclass(frozen=True)
class BoolOp:
    """AND/OR combination of conditions (standard precedence: AND binds
    tighter than OR)."""

    op: str  # "and" | "or"
    items: Tuple["BoolExpr", ...]

    def __post_init__(self) -> None:
        assert self.op in ("and", "or")
        assert len(self.items) >= 2


BoolExpr = Union[Comparison, BoolOp]


def conjunction_terms(expr: Optional[BoolExpr]) -> Tuple["BoolExpr", ...]:
    """Top-level AND-ed terms of a condition (empty for None)."""
    if expr is None:
        return ()
    if isinstance(expr, BoolOp) and expr.op == "and":
        return expr.items
    return (expr,)


@dataclass(frozen=True)
class SourceRef:
    """A windowed stream reference in FROM."""

    stream: str
    window: WindowSpec
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.stream


@dataclass(frozen=True)
class OrderItem:
    """One ``ORDER BY`` key: an expression plus sort direction."""

    expr: Expr
    desc: bool = False


@dataclass(frozen=True)
class JoinClause:
    """``[LEFT [OUTER]] JOIN source ON comparison`` after the FROM list."""

    source: SourceRef
    on: Comparison
    outer: bool = False


@dataclass(frozen=True)
class Query:
    items: Tuple[SelectItem, ...]
    sources: Tuple[SourceRef, ...]
    where: Optional["BoolExpr"] = None
    group_by: Tuple[ColumnRef, ...] = ()
    #: HAVING in the same or-of-ands shape as WHERE (None = absent)
    having: Optional["BoolExpr"] = None
    distinct: bool = False
    joins: Tuple[JoinClause, ...] = ()
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None


@dataclass(frozen=True)
class DerivedStream:
    """Q3's prefix form: ``( query ) as Name`` defining a derived stream."""

    name: str
    query: Query


@dataclass(frozen=True)
class Script:
    """Zero or more derived-stream definitions followed by the main query."""

    derived: Tuple[DerivedStream, ...]
    main: Query
