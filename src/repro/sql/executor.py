"""Plan executors: run compiled queries batch-by-batch on ExecColumns.

The server hands each executor a dict of :class:`ExecColumn` per batch —
direct (compressed codes) when the codec serves every use of the column,
decoded otherwise — and the executor produces a :class:`QueryResult`.
Batches whose windows never cross a batch boundary execute entirely on the
direct representation; cross-boundary windows fall back to the decoded
batch-buffer tail (DESIGN.md §2, Sec. VI of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import PlanningError
from ..operators.aggregation import window_aggregate
from ..operators.base import ExecColumn, decoded_column
from ..operators.distinct import distinct_indices
from ..operators.groupby import combine_keys, window_group_aggregate
from ..operators.join import semi_join_latest
from ..operators.selection import compare_to_literal
from ..stream.batch import Batch
from ..stream.quantize import dequantize
from ..stream.schema import KIND_FLOAT, Schema
from ..stream.window import (
    MODE_TIME,
    PartitionWindowState,
    TimeWindowScheduler,
    WindowScheduler,
)
from .ast import BinaryOp, ColumnRef, Expr, Literal
from .planner import (
    OUT_AGG,
    OUT_COLUMN,
    OUT_EXPR,
    OUT_KEY,
    OUT_LAST,
    HavingNode,
    HavingPredicate,
    JoinPlan,
    LiteralPredicate,
    OutputColumn,
    PassthroughPlan,
    Plan,
    PredicateGroup,
    PredicateNode,
    WindowAggPlan,
)


@dataclass
class QueryResult:
    """Output rows of one batch, column-wise in user-facing values."""

    columns: Dict[str, np.ndarray] = field(default_factory=dict)
    n_rows: int = 0

    @classmethod
    def empty(cls, outputs: Sequence[OutputColumn]) -> "QueryResult":
        return cls(columns={o.name: np.zeros(0) for o in outputs}, n_rows=0)

    @classmethod
    def merge(cls, results: Sequence["QueryResult"]) -> "QueryResult":
        results = [r for r in results if r.n_rows > 0]
        if not results:
            return cls()
        names = list(results[0].columns)
        return cls(
            columns={
                name: np.concatenate([r.columns[name] for r in results])
                for name in names
            },
            n_rows=sum(r.n_rows for r in results),
        )


def _convert_output(out: OutputColumn, stored: np.ndarray) -> np.ndarray:
    """Stored fixed-point domain -> user-facing values."""
    scale = 10 ** out.src_decimals
    func = out.agg_func
    if func == "count":
        return np.asarray(stored, dtype=np.int64)
    if func == "avg":
        return np.asarray(stored, dtype=np.float64) / scale
    if out.out_field.kind == KIND_FLOAT:
        return dequantize(np.asarray(stored), out.src_decimals)
    return np.asarray(stored, dtype=np.int64)


def _eval_expr(expr: Expr, values: Dict[str, np.ndarray]) -> np.ndarray:
    """Evaluate arithmetic expressions in the stored integer domain.

    Division is floor division, matching Q3's ``position / 5280``
    segmentation of integer positions.
    """
    if isinstance(expr, Literal):
        return np.int64(expr.value)
    if isinstance(expr, ColumnRef):
        return values[expr.name]
    if isinstance(expr, BinaryOp):
        left = _eval_expr(expr.left, values)
        right = _eval_expr(expr.right, values)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return np.floor_divide(left, right)
        raise PlanningError(f"unknown arithmetic operator {expr.op!r}")
    raise PlanningError(f"cannot evaluate expression {expr!s}")


def _predicate_mask(
    columns: Dict[str, ExecColumn], node: "PredicateNode", n: int
) -> np.ndarray:
    """Evaluate an AND/OR predicate tree into a boolean row mask."""
    if isinstance(node, LiteralPredicate):
        return compare_to_literal(columns[node.column], node.op, node.literal)
    masks = [_predicate_mask(columns, child, n) for child in node.children]
    out = masks[0].copy()
    for m in masks[1:]:
        if node.op == "and":
            out &= m
        else:
            out |= m
    return out


def _apply_where(
    columns: Dict[str, ExecColumn], predicate, n: int
) -> Tuple[Dict[str, ExecColumn], int]:
    """Filter the batch per the WHERE predicate tree (None = keep all)."""
    if predicate is None or n == 0:
        return columns, n
    if (
        isinstance(predicate, PredicateGroup)
        and predicate.op == "and"
        and predicate.ordered
    ):
        return _apply_where_cascade(columns, predicate, n)
    mask = _predicate_mask(columns, predicate, n)
    if mask.all():
        return columns, n
    idx = np.nonzero(mask)[0]
    return {name: col.take(idx) for name, col in columns.items()}, int(idx.size)


def _apply_where_cascade(
    columns: Dict[str, ExecColumn], predicate: PredicateGroup, n: int
) -> Tuple[Dict[str, ExecColumn], int]:
    """Short-circuit an optimizer-ordered AND: each conjunct filters the
    survivors of the previous one, so later (costlier) predicates touch
    fewer rows.  Semantically identical to the all-at-once mask."""
    for child in predicate.children:
        if n == 0:
            break
        mask = _predicate_mask(columns, child, n)
        if mask.all():
            continue
        idx = np.nonzero(mask)[0]
        columns = {name: col.take(idx) for name, col in columns.items()}
        n = int(idx.size)
    return columns, n


def _apply_where_fused(
    columns: Dict[str, ExecColumn],
    predicate: "PredicateNode",
    fuse: str,
    n: int,
) -> Tuple[Dict[str, ExecColumn], int]:
    """Filter at run granularity, keeping ``fuse`` run-structured.

    The optimizer only sets ``fuse_column`` when the predicate reads that
    single column, so the whole tree can be evaluated once per *run* of
    the fused column; surviving runs stay a run view (the run-aware
    aggregation path consumes them without expansion) while the other
    columns are row-filtered through the expanded mask.  Batches where
    the column arrives without a run view fall back to the row path.
    """
    if predicate is None or n == 0:
        return columns, n
    col = columns.get(fuse)
    runs = col.pending_runs if col is not None else None
    if runs is None:
        return _apply_where(columns, predicate, n)
    run_values, run_lengths = runs
    run_mask = _predicate_mask(
        {fuse: decoded_column(fuse, run_values)}, predicate, int(run_values.size)
    )
    if run_mask.all():
        return columns, n
    row_idx = np.flatnonzero(np.repeat(run_mask, run_lengths))
    out: Dict[str, ExecColumn] = {}
    for name, column in columns.items():
        if name == fuse:
            out[name] = ExecColumn(
                name, runs=(run_values[run_mask], run_lengths[run_mask])
            )
        else:
            out[name] = column.take(row_idx)
    return out, int(row_idx.size)


class WindowAggExecutor:
    """Executes Q1/Q2/Q4/Q5/Q6-shaped plans (count or time windows)."""

    def __init__(self, plan: WindowAggPlan):
        self.plan = plan
        if plan.window.mode == MODE_TIME:
            self.scheduler = TimeWindowScheduler(plan.window)
        else:
            self.scheduler = WindowScheduler(plan.window)
        self._tail: Dict[str, np.ndarray] = {}
        self._referenced = sorted(plan.profile.referenced)

    def _feed_scheduler(self, columns: Dict[str, ExecColumn], n: int):
        if self.plan.window.mode != MODE_TIME:
            return self.scheduler.feed(n)
        # time windows assign tuples by timestamp value: merge the carried
        # tail's timestamps with the new batch's and let the scheduler
        # translate time bounds into index extents
        tc = self.plan.window.time_column
        new_ts = columns[tc].values() if n else np.zeros(0, dtype=np.int64)
        tail_ts = self._tail.get(tc)
        merged_ts = (
            np.concatenate([tail_ts, new_ts]) if tail_ts is not None else new_ts
        )
        return self.scheduler.feed(merged_ts)

    def execute(self, columns: Dict[str, ExecColumn], n: int) -> QueryResult:
        plan = self.plan
        columns = {name: columns[name] for name in self._referenced}
        if plan.fuse_column:
            columns, n = _apply_where_fused(
                columns, plan.where, plan.fuse_column, n
            )
        else:
            columns, n = _apply_where(columns, plan.where, n)
        layout = self._feed_scheduler(columns, n)
        if layout.carry:
            merged = {
                name: np.concatenate([self._tail[name], col.values()])
                for name, col in columns.items()
            }
            work: Dict[str, ExecColumn] = {
                name: decoded_column(name, arr) for name, arr in merged.items()
            }
        else:
            work = columns
        result = (
            self._run_windows(work, list(layout.windows))
            if layout.windows
            else QueryResult.empty(plan.outputs)
        )
        # retain the decoded tail for cross-batch windows of the next feed
        total = layout.carry + n
        if layout.retain_start < total:
            if layout.carry:
                self._tail = {
                    name: merged[name][layout.retain_start:] for name in merged
                }
            else:
                self._tail = {
                    name: col.slice(layout.retain_start, n).values()
                    for name, col in columns.items()
                }
        else:
            self._tail = {}
        return result

    # ----- window execution ------------------------------------------------

    def _run_windows(
        self, work: Dict[str, ExecColumn], windows: List[Tuple[int, int]]
    ) -> QueryResult:
        if self.plan.group_keys:
            return self._run_grouped(work, windows)
        return self._run_global(work, windows)

    def _having_mask(self, node: HavingNode, out: Dict[str, np.ndarray]) -> np.ndarray:
        """Evaluate the HAVING tree into a boolean row mask."""
        if isinstance(node, HavingPredicate):
            col = out[node.output]
            if node.op == "==":
                return col == node.literal
            if node.op == "!=":
                return col != node.literal
            if node.op == "<":
                return col < node.literal
            if node.op == "<=":
                return col <= node.literal
            if node.op == ">":
                return col > node.literal
            return col >= node.literal
        masks = [self._having_mask(child, out) for child in node.children]
        acc = masks[0].copy()
        for m in masks[1:]:
            if node.op == "and":
                acc &= m
            else:
                acc |= m
        return acc

    def _finalize(
        self, out: Dict[str, np.ndarray], window_ids: np.ndarray
    ) -> QueryResult:
        """HAVING filter, per-window ORDER BY/LIMIT, drop hidden columns."""
        plan = self.plan
        visible = [o.name for o in plan.outputs]
        n_rows = len(next(iter(out.values()))) if out else 0
        if plan.having is not None and n_rows:
            mask = self._having_mask(plan.having, out)
            if not mask.all():
                out = {name: arr[mask] for name, arr in out.items()}
                window_ids = window_ids[mask]
                n_rows = int(mask.sum())
        if plan.order_by and n_rows:
            out, n_rows = self._order_and_limit(out, window_ids, n_rows)
        return QueryResult(
            columns={name: out[name] for name in visible}, n_rows=n_rows
        )

    def _order_and_limit(
        self, out: Dict[str, np.ndarray], window_ids: np.ndarray, n_rows: int
    ) -> Tuple[Dict[str, np.ndarray], int]:
        """Sort rows within each window and apply the per-window LIMIT.

        Ties on the explicit keys are broken by every visible output
        column, so the emitted row order (and any LIMIT cut) is identical
        across the direct, decoded and scalar-reference execution paths:
        aggregates are computed in the stored integer domain, making the
        sort key values bit-equal path to path.
        """
        plan = self.plan
        # np.lexsort keys run least- to most-significant: visible-column
        # tie-break first, then the ORDER BY keys (first key most
        # significant among them), then the window id outermost so rows
        # never interleave across windows
        lex_keys: List[np.ndarray] = [
            out[name]
            for name in sorted((o.name for o in plan.outputs), reverse=True)
        ]
        for key in reversed(plan.order_by):
            arr = out[key.output]
            lex_keys.append(-arr if key.desc else arr)
        lex_keys.append(window_ids)
        order = np.lexsort(tuple(lex_keys))
        if plan.limit is not None:
            wid_sorted = window_ids[order]
            change = np.empty(n_rows, dtype=bool)
            change[0] = True
            change[1:] = wid_sorted[1:] != wid_sorted[:-1]
            run_starts = np.nonzero(change)[0]
            run_ids = np.cumsum(change) - 1
            rank = np.arange(n_rows) - run_starts[run_ids]
            order = order[rank < plan.limit]
        return {name: arr[order] for name, arr in out.items()}, int(order.size)

    def _run_global(
        self, work: Dict[str, ExecColumn], windows: List[Tuple[int, int]]
    ) -> QueryResult:
        ends = np.asarray([e for _, e in windows], dtype=np.int64)
        last_rows = ends - 1
        out: Dict[str, np.ndarray] = {}
        for o in self.plan.outputs + self.plan.hidden_outputs:
            if o.kind == OUT_AGG:
                if o.source_column is None:  # count(*)
                    stored = np.asarray([e - s for s, e in windows], dtype=np.int64)
                else:
                    stored = window_aggregate(
                        work[o.source_column], windows, o.agg_func
                    )
            elif o.kind in (OUT_LAST, OUT_KEY):
                col = work[o.source_column]
                # the result materialization step itself:
                # lint: force-decode bounded, one value per window
                stored = col.decode(col.codes[last_rows])
            else:
                raise PlanningError(f"unsupported output kind {o.kind!r} here")
            out[o.name] = _convert_output(o, stored)
        return self._finalize(out, np.arange(len(windows), dtype=np.int64))

    def _run_grouped(
        self, work: Dict[str, ExecColumn], windows: List[Tuple[int, int]]
    ) -> QueryResult:
        plan = self.plan
        combined = combine_keys([work[k] for k in plan.group_keys])
        all_outputs = plan.outputs + plan.hidden_outputs
        agg_outputs = [o for o in all_outputs if o.kind == OUT_AGG]
        agg_cols = [
            work[o.source_column] if o.source_column else None for o in agg_outputs
        ]
        agg_funcs = [o.agg_func for o in agg_outputs]
        grouped = window_group_aggregate(combined, agg_cols, agg_funcs, windows)

        reps = (
            np.concatenate([g.representatives for g in grouped])
            if grouped
            else np.zeros(0, dtype=np.int64)
        )
        group_counts = [g.representatives.size for g in grouped]
        last_rows = np.repeat(
            np.asarray([e - 1 for _, e in windows], dtype=np.int64),
            group_counts,
        )
        out: Dict[str, np.ndarray] = {}
        agg_idx = 0
        for o in all_outputs:
            if o.kind == OUT_AGG:
                pos = agg_idx
                stored = (
                    np.concatenate([g.aggregates[pos] for g in grouped])
                    if grouped
                    else np.zeros(0, dtype=np.int64)
                )
                agg_idx += 1
            elif o.kind == OUT_KEY:
                col = work[o.source_column]
                # lint: force-decode bounded: one value per group key
                stored = col.decode(col.codes[reps])
            elif o.kind == OUT_LAST:
                col = work[o.source_column]
                # lint: force-decode bounded: one value per group/window
                stored = col.decode(col.codes[last_rows])
            else:
                raise PlanningError(f"unsupported output kind {o.kind!r} here")
            out[o.name] = _convert_output(o, stored)
        window_ids = np.repeat(
            np.arange(len(windows), dtype=np.int64),
            np.asarray(group_counts, dtype=np.int64),
        )
        return self._finalize(out, window_ids)


class PassthroughExecutor:
    """Executes ``[range unbounded]`` plans (per-tuple projection)."""

    def __init__(self, plan: PassthroughPlan):
        self.plan = plan

    def compute_stored(
        self, columns: Dict[str, ExecColumn], n: int
    ) -> Dict[str, np.ndarray]:
        """Projected output columns in the stored integer domain."""
        plan = self.plan
        columns, n = _apply_where(columns, plan.where, n)
        indices = np.arange(n, dtype=np.int64)
        if plan.distinct:
            dedup_cols = [
                columns[o.source_column]
                for o in plan.outputs
                if o.kind == OUT_COLUMN
            ]
            if dedup_cols:
                indices = distinct_indices(dedup_cols, indices)
        values_cache: Dict[str, np.ndarray] = {}

        def col_values(name: str) -> np.ndarray:
            if name not in values_cache:
                values_cache[name] = columns[name].values()
            return values_cache[name]

        out: Dict[str, np.ndarray] = {}
        for o in plan.outputs:
            if o.kind == OUT_COLUMN:
                col = columns[o.source_column]
                # output delivery of the post-WHERE/DISTINCT selection:
                # lint: force-decode bounded, selected output rows only
                out[o.name] = col.decode(col.codes[indices])
            elif o.kind == OUT_EXPR:
                refs = {c.name: col_values(c.name)[indices] for c in _expr_refs(o.expr)}
                out[o.name] = np.asarray(_eval_expr(o.expr, refs), dtype=np.int64)
            else:
                raise PlanningError(f"unsupported output kind {o.kind!r} here")
        return out

    def execute(self, columns: Dict[str, ExecColumn], n: int) -> QueryResult:
        stored = self.compute_stored(columns, n)
        out = {
            o.name: _convert_output(o, stored[o.name]) for o in self.plan.outputs
        }
        n_rows = len(next(iter(out.values()))) if out else 0
        return QueryResult(columns=out, n_rows=n_rows)


def _expr_refs(expr: Expr) -> List[ColumnRef]:
    if isinstance(expr, ColumnRef):
        return [expr]
    if isinstance(expr, BinaryOp):
        return _expr_refs(expr.left) + _expr_refs(expr.right)
    return []


class JoinExecutor:
    """Executes join shapes: derived stream -> window ⋈ partition state(s).

    The legacy comma form (single inner side probing its own key) keeps
    the :func:`semi_join_latest` kernel with arbitrary per-key depth; the
    explicit ``JOIN ... ON`` form runs the general path: distinct probe
    combinations per window, one aligned latest-row lookup per side, and
    NaN/probe-value fills for LEFT OUTER misses.
    """

    def __init__(self, plan: JoinPlan):
        self.plan = plan
        self.derived = PassthroughExecutor(plan.derived) if plan.derived else None
        if plan.window.mode == MODE_TIME:
            self.scheduler = TimeWindowScheduler(plan.window)
        else:
            self.scheduler = WindowScheduler(plan.window)
        self.sides = plan.sides
        self.states = [PartitionWindowState(side.window) for side in self.sides]
        # backwards-compatible alias for the single-side state
        self.state = self.states[0]
        only = self.sides[0]
        self._semi = (
            len(self.sides) == 1
            and not only.outer
            and only.probe_column == only.key_column
        )
        self._tail: Dict[str, np.ndarray] = {}
        self._absorbed = 0       # global count of rows absorbed into state
        self._merged_start = 0   # global index of merged[0]
        # columns the join consumes from the (derived) stream
        needed = {o.source_column for o in plan.outputs}
        for side in self.sides:
            needed.add(side.probe_column)
            needed.add(side.key_column)
        if plan.window.mode == MODE_TIME:
            needed.add(plan.window.time_column)
        self._needed = sorted(needed)
        self._state_schema = Schema([plan.join_schema[name] for name in self._needed])

    def execute(self, columns: Dict[str, ExecColumn], n: int) -> QueryResult:
        plan = self.plan
        if self.derived is not None:
            stored = self.derived.compute_stored(columns, n)
        else:
            stored = {name: columns[name].values() for name in self._needed}
        n_rows = len(next(iter(stored.values()))) if stored else 0
        merged = {
            name: (
                np.concatenate([self._tail[name], stored[name]])
                if self._tail
                else stored[name]
            )
            for name in self._needed
        }
        if plan.window.mode == MODE_TIME:
            layout = self.scheduler.feed(merged[plan.window.time_column])
        else:
            layout = self.scheduler.feed(n_rows)
        results: List[QueryResult] = []
        for (s, e) in layout.windows:
            global_end = self._merged_start + e
            if global_end > self._absorbed:
                # a sampling window (slide > size) can discard rows between
                # windows; those are dropped before ever being absorbed, so
                # resume from the earliest retained row rather than indexing
                # before merged[0] with a negative offset
                lo = max(self._absorbed - self._merged_start, 0)
                self._absorb(merged, lo, e)
                self._absorbed = global_end
            result = (
                self._probe_semi(merged, s, e)
                if self._semi
                else self._probe_general(merged, s, e)
            )
            if result is not None:
                results.append(result)
        total = layout.carry + n_rows
        if layout.retain_start < total:
            self._tail = {
                name: merged[name][layout.retain_start:] for name in self._needed
            }
        else:
            self._tail = {}
        self._merged_start += layout.retain_start
        if not results:
            return QueryResult.empty(plan.outputs)
        return QueryResult.merge(results)

    def _probe_semi(
        self, merged: Dict[str, np.ndarray], s: int, e: int
    ) -> Optional[QueryResult]:
        plan = self.plan
        rows = semi_join_latest(merged[plan.join_key][s:e], self.state)
        if not rows:
            return None
        out = {
            o.name: _convert_output(o, rows[o.source_column])
            for o in plan.outputs
        }
        return QueryResult(columns=out, n_rows=len(rows[plan.join_key]))

    def _probe_general(
        self, merged: Dict[str, np.ndarray], s: int, e: int
    ) -> Optional[QueryResult]:
        """Multi-way/outer probe: one row per distinct probe combination."""
        plan = self.plan
        probes = np.stack(
            [
                np.asarray(merged[side.probe_column][s:e], dtype=np.int64)
                for side in self.sides
            ],
            axis=1,
        )
        if probes.shape[0] == 0:
            return None
        combos = np.unique(probes, axis=0)  # sorted: deterministic order
        n_combos = combos.shape[0]
        lookups = []
        founds = []
        for i, (side, state) in enumerate(zip(self.sides, self.states)):
            cols, found = state.latest_aligned(combos[:, i], self._needed)
            lookups.append(cols)
            founds.append(found)
        keep = np.ones(n_combos, dtype=bool)
        for side, found in zip(self.sides, founds):
            if not side.outer:
                keep &= found
        if not keep.any():
            return None
        out: Dict[str, np.ndarray] = {}
        for o, i in zip(plan.outputs, plan.output_sides):
            side = self.sides[i]
            vals = lookups[i][o.source_column]
            missing = ~founds[i]
            if side.outer and o.source_column == side.key_column:
                # the ON equality pins the key of a missed side to the
                # probe value, so the key column never goes NULL
                vals = vals.copy()
                vals[missing] = combos[missing, i]
            converted = _convert_output(o, vals)[keep]
            if side.outer and o.source_column != side.key_column:
                converted[missing[keep]] = np.nan
            out[o.name] = converted
        return QueryResult(columns=out, n_rows=int(keep.sum()))

    def _absorb(self, merged: Dict[str, np.ndarray], lo: int, hi: int) -> None:
        batch = Batch(
            self._state_schema,
            {name: merged[name][lo:hi] for name in self._needed},
        )
        for state in self.states:
            state.update(batch)


def make_executor(plan: Plan):
    """Instantiate the executor matching a plan's shape."""
    if isinstance(plan, WindowAggPlan):
        return WindowAggExecutor(plan)
    if isinstance(plan, JoinPlan):
        return JoinExecutor(plan)
    if isinstance(plan, PassthroughPlan):
        return PassthroughExecutor(plan)
    raise PlanningError(f"no executor for plan type {type(plan).__name__}")
