"""Streaming SQL: lexer, parser, planner and executors (Table III dialect)."""

from .ast import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    Comparison,
    DerivedStream,
    Literal,
    Query,
    Script,
    SelectItem,
    SourceRef,
)
from .executor import (
    JoinExecutor,
    PassthroughExecutor,
    QueryResult,
    WindowAggExecutor,
    make_executor,
)
from .lexer import Token, tokenize
from .parser import parse, parse_query
from .unparse import to_sql
from .planner import (
    JoinPlan,
    LiteralPredicate,
    OutputColumn,
    PassthroughPlan,
    Plan,
    Planner,
    WindowAggPlan,
    plan_query,
)

__all__ = [
    "AggregateCall",
    "BinaryOp",
    "ColumnRef",
    "Comparison",
    "DerivedStream",
    "Literal",
    "Query",
    "Script",
    "SelectItem",
    "SourceRef",
    "JoinExecutor",
    "PassthroughExecutor",
    "QueryResult",
    "WindowAggExecutor",
    "make_executor",
    "Token",
    "tokenize",
    "parse",
    "parse_query",
    "to_sql",
    "JoinPlan",
    "LiteralPredicate",
    "OutputColumn",
    "PassthroughPlan",
    "Plan",
    "Planner",
    "WindowAggPlan",
    "plan_query",
]
