"""Tokenizer for the streaming SQL dialect of Table III."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import SQLSyntaxError

IDENT = "IDENT"
NUMBER = "NUMBER"
SYMBOL = "SYMBOL"
EOF = "EOF"

#: Multi-character symbols first so maximal munch applies.
_SYMBOLS = (
    "==",
    "!=",
    "<=",
    ">=",
    "(",
    ")",
    "[",
    "]",
    ",",
    ".",
    "+",
    "-",
    "*",
    "/",
    "<",
    ">",
    "=",
)

#: Keywords are case-insensitive; stored upper-case in Token.value.
KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "AS",
        "AND",
        "OR",
        "RANGE",
        "SLIDE",
        "SECONDS",
        "ON",
        "UNBOUNDED",
        "PARTITION",
        "ROWS",
        "ORDER",
        "ASC",
        "DESC",
        "LIMIT",
        "JOIN",
        "LEFT",
        "OUTER",
        "AVG",
        "SUM",
        "MAX",
        "MIN",
        "COUNT",
    }
)


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    pos: int
    #: 1-based source coordinates (parser errors point at the lexeme)
    line: int = 1
    column: int = 1

    def is_keyword(self, word: str) -> bool:
        return self.kind == IDENT and self.value.upper() == word


def tokenize(text: str) -> List[Token]:
    """Tokenize query text; raises SQLSyntaxError on unknown characters."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    line = 1
    line_start = 0  # offset of the first character of the current line

    def coords(pos: int) -> Tuple[int, int]:
        return line, pos - line_start + 1

    while i < n:
        ch = text[i]
        if ch == "\n":
            i += 1
            line += 1
            line_start = i
            continue
        if ch.isspace():
            i += 1
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token(IDENT, text[i:j], i, *coords(i)))
            i = j
            continue
        if ch.isdigit():
            j = i + 1
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append(Token(NUMBER, text[i:j], i, *coords(i)))
            i = j
            continue
        for sym in _SYMBOLS:
            if text.startswith(sym, i):
                tokens.append(Token(SYMBOL, sym, i, *coords(i)))
                i += len(sym)
                break
        else:
            ln, col = coords(i)
            raise SQLSyntaxError(
                f"unexpected character {ch!r} at line {ln}, column {col}",
                position=i,
                line=ln,
                column=col,
            )
    tokens.append(Token(EOF, "", n, *coords(n)))
    return tokens
