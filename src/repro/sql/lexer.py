"""Tokenizer for the streaming SQL dialect of Table III."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import SQLSyntaxError

IDENT = "IDENT"
NUMBER = "NUMBER"
SYMBOL = "SYMBOL"
EOF = "EOF"

#: Multi-character symbols first so maximal munch applies.
_SYMBOLS = (
    "==",
    "!=",
    "<=",
    ">=",
    "(",
    ")",
    "[",
    "]",
    ",",
    ".",
    "+",
    "-",
    "*",
    "/",
    "<",
    ">",
    "=",
)

#: Keywords are case-insensitive; stored upper-case in Token.value.
KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "AS",
        "AND",
        "OR",
        "RANGE",
        "SLIDE",
        "SECONDS",
        "ON",
        "UNBOUNDED",
        "PARTITION",
        "ROWS",
        "AVG",
        "SUM",
        "MAX",
        "MIN",
        "COUNT",
    }
)


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    pos: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == IDENT and self.value.upper() == word


def tokenize(text: str) -> List[Token]:
    """Tokenize query text; raises SQLSyntaxError on unknown characters."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token(IDENT, text[i:j], i))
            i = j
            continue
        if ch.isdigit():
            j = i + 1
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append(Token(NUMBER, text[i:j], i))
            i = j
            continue
        for sym in _SYMBOLS:
            if text.startswith(sym, i):
                tokens.append(Token(SYMBOL, sym, i))
                i += len(sym)
                break
        else:
            raise SQLSyntaxError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(EOF, "", n))
    return tokens
