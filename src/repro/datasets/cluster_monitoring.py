"""Google cluster monitoring dataset surrogate (2011 trace [45]).

Task events from a production cluster: submissions, schedules, failures.
The generator mirrors the trace properties relevant to compression:
few event categories and types (heavy skew), a moderate set of users, and
fractional cpu/disk requests recorded at coarse granularity.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..stream.schema import Field, Schema
from ..stream.source import GeneratorSource

SCHEMA = Schema(
    [
        Field("timestamp", "int", 8),
        Field("category", "int", 4),
        Field("eventType", "int", 4),
        Field("userId", "int", 4),
        Field("cpu", "float", 4, decimals=4),
        Field("disk", "float", 4, decimals=4),
    ]
)

N_CATEGORIES = 8      # scheduling class x priority bands
N_EVENT_TYPES = 9     # SUBMIT..UPDATE_RUNNING of the trace
N_USERS = 300
_BASE_TIMESTAMP = 1_304_233_200  # trace epoch (May 2011)

#: cpu request quanta: machines are allocated in coarse fractions
_CPU_LEVELS = np.round(np.linspace(0.0125, 0.5, 40), 4)
_DISK_LEVELS = np.round(np.geomspace(1e-4, 0.2, 60), 4)


def generate(
    n: int, seed: int = 2, start_timestamp: int = _BASE_TIMESTAMP
) -> Dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    # Zipf-ish skew: most events come from few users / categories
    user_rank = np.minimum(
        rng.geometric(0.02, size=n) - 1, N_USERS - 1
    )
    category = np.minimum(rng.geometric(0.45, size=n) - 1, N_CATEGORIES - 1)
    event_type = np.minimum(rng.geometric(0.35, size=n) - 1, N_EVENT_TYPES - 1)
    timestamp = start_timestamp + np.arange(n) // 50  # ~50 events/second
    cpu = _CPU_LEVELS[rng.integers(0, _CPU_LEVELS.size, size=n)]
    disk = _DISK_LEVELS[rng.integers(0, _DISK_LEVELS.size, size=n)]
    return {
        "timestamp": timestamp,
        "category": category,
        "eventType": event_type,
        "userId": user_rank,
        "cpu": cpu,
        "disk": disk,
    }


def source(
    batch_size: int, batches: Optional[int] = None, seed: int = 2
) -> GeneratorSource:
    """An unbounded (or ``batches``-long) cluster-event stream."""

    def make(index: int) -> Dict[str, np.ndarray]:
        return generate(
            batch_size,
            seed=seed + index,
            start_timestamp=_BASE_TIMESTAMP + index * (batch_size // 50 + 1),
        )

    return GeneratorSource(SCHEMA, make, limit=batches)
