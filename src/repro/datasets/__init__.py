"""Synthetic surrogates of the paper's three real-world datasets.

See DESIGN.md §3 for the substitution rationale: the generators reproduce
the statistical properties the compression codecs and the selector react
to (value domains, repetition, cardinalities, negative values in Linear
Road), with fixed seeds for reproducibility.
"""

from . import cluster_monitoring, linear_road, smart_grid
from .queries import DATASET_QUERIES, Q3_TIME_TEXT, QUERIES, QUERY_TEXT, QueryConfig

__all__ = [
    "cluster_monitoring",
    "linear_road",
    "smart_grid",
    "DATASET_QUERIES",
    "Q3_TIME_TEXT",
    "QUERIES",
    "QUERY_TEXT",
    "QueryConfig",
]
