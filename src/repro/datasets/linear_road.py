"""Linear Road Benchmark dataset surrogate [25].

Position reports of vehicles on a network of toll expressways: every car
reports position and speed every 30 seconds.  Deliberate property kept
from the paper: the stream contains *negative numbers* (``direction`` is
east/west = +1/-1), so Elias Gamma/Delta are inapplicable to this dataset,
exactly as noted under Fig. 5.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..stream.schema import Field, Schema
from ..stream.source import GeneratorSource

SCHEMA = Schema(
    [
        Field("timestamp", "int", 8),
        Field("vehicle", "int", 4),
        Field("speed", "int", 4),
        Field("highway", "int", 4),
        Field("lane", "int", 4),
        Field("direction", "int", 4),
        Field("position", "int", 4),
    ]
)

N_VEHICLES = 20_000
N_HIGHWAYS = 10
N_LANES = 5
FEET_PER_MILE = 5_280
HIGHWAY_MILES = 100


def generate(n: int, seed: int = 3, start_timestamp: int = 0) -> Dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    vehicle = rng.integers(0, N_VEHICLES, size=n)
    highway = vehicle % N_HIGHWAYS  # a vehicle stays on its highway
    lane = rng.integers(0, N_LANES, size=n)
    direction = np.where(vehicle % 2 == 0, 1, -1)  # east = +1, west = -1
    # congestion: speeds cluster by highway segment
    base_speed = 40 + (vehicle % 7) * 5
    speed = np.clip(base_speed + rng.integers(-10, 11, size=n), 0, 100)
    position = (
        (vehicle * 977 + start_timestamp * 60) % (HIGHWAY_MILES * FEET_PER_MILE)
        + rng.integers(0, 500, size=n)
    )
    timestamp = start_timestamp + np.arange(n) // 100  # ~100 reports/second
    return {
        "timestamp": timestamp,
        "vehicle": vehicle,
        "speed": speed,
        "highway": highway,
        "lane": lane,
        "direction": direction,
        "position": position,
    }


def source(
    batch_size: int, batches: Optional[int] = None, seed: int = 3
) -> GeneratorSource:
    """An unbounded (or ``batches``-long) position-report stream."""

    def make(index: int) -> Dict[str, np.ndarray]:
        return generate(
            batch_size,
            seed=seed + index,
            start_timestamp=index * (batch_size // 100 + 1),
        )

    return GeneratorSource(SCHEMA, make, limit=batches)
