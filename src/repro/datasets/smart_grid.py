"""Smart Grid dataset generator (DEBS 2014 grand challenge surrogate).

The paper streams smart-plug energy measurements: 4,055M readings from
2,125 plugs across 40 houses [43].  The raw trace is not redistributable,
so this generator reproduces the statistical properties the codecs see
(DESIGN.md §3):

* ``timestamp`` — epoch seconds advancing slowly: many readings share a
  timestamp (long runs, small deltas);
* ``house``/``household``/``plug`` — reporting is bursty per house, so ids
  arrive in runs; cardinalities mirror the trace (40 houses, ~4 households
  per house, ~5 plugs per household);
* ``value`` — load in watts with two decimals; appliances sit in discrete
  power states, so the column has a few hundred distinct values — which is
  why Dictionary encoding is the best single codec on this dataset
  (Fig. 5).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..stream.dynamics import DynamicWorkload, Phase
from ..stream.schema import Field, Schema
from ..stream.source import GeneratorSource

SCHEMA = Schema(
    [
        Field("timestamp", "int", 8),
        Field("value", "float", 4, decimals=2),
        Field("plug", "int", 4),
        Field("household", "int", 4),
        Field("house", "int", 4),
    ]
)

N_HOUSES = 40
HOUSEHOLDS_PER_HOUSE = 4
PLUGS_PER_HOUSEHOLD = 5
_BASE_TIMESTAMP = 1_377_986_401  # DEBS 2014 trace start (2013-09-01)

#: Discrete appliance power states in watts (two decimals), shared pool.
_POWER_STATES = np.round(
    np.concatenate(
        [
            np.linspace(0.0, 5.0, 24),        # standby loads
            np.linspace(20.0, 250.0, 64),     # electronics / lighting
            np.linspace(800.0, 2400.0, 40),   # heating / kitchen
        ]
    ),
    2,
)


def generate(
    n: int, seed: int = 1, start_timestamp: int = _BASE_TIMESTAMP, burst: int = 64
) -> Dict[str, np.ndarray]:
    """Generate ``n`` readings; houses report in bursts of ~``burst`` rows."""
    rng = np.random.default_rng(seed)
    n_bursts = max(n // burst + 1, 1)
    burst_house = rng.integers(0, N_HOUSES, size=n_bursts)
    house = np.repeat(burst_house, burst)[:n]
    household = house * HOUSEHOLDS_PER_HOUSE + rng.integers(
        0, HOUSEHOLDS_PER_HOUSE, size=n
    )
    plug = household * PLUGS_PER_HOUSEHOLD + rng.integers(
        0, PLUGS_PER_HOUSEHOLD, size=n
    )
    # ~200 readings share each second across the grid
    timestamp = start_timestamp + np.arange(n) // 200
    # each plug favors a home state; occasional transitions to other states
    home_state = plug % _POWER_STATES.size
    jump = rng.random(n) < 0.15
    state = np.where(jump, rng.integers(0, _POWER_STATES.size, size=n), home_state)
    value = _POWER_STATES[state]
    return {
        "timestamp": timestamp,
        "value": value,
        "plug": plug,
        "household": household,
        "house": house,
    }


def source(
    batch_size: int, batches: Optional[int] = None, seed: int = 1
) -> GeneratorSource:
    """An unbounded (or ``batches``-long) smart-grid stream."""

    def make(index: int) -> Dict[str, np.ndarray]:
        return generate(
            batch_size,
            seed=seed + index,
            start_timestamp=_BASE_TIMESTAMP + index * (batch_size // 200 + 1),
        )

    return GeneratorSource(SCHEMA, make, limit=batches)


# ----- dynamic workload (Fig. 7) -------------------------------------------


def _phase_burst(rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
    """One house floods the stream: huge runs, few distinct values."""
    cols = generate(n, seed=int(rng.integers(1 << 31)), burst=n)
    cols["value"] = _POWER_STATES[rng.integers(0, 8, size=n)]
    return cols


def _phase_peak(rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
    """Evening peak: every house interleaved, wide busy loads."""
    cols = generate(n, seed=int(rng.integers(1 << 31)), burst=1)
    # loads spread across the full range with per-reading variation
    cols["value"] = np.round(rng.uniform(0.0, 2400.0, size=n), 2)
    return cols


def _phase_night(rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
    """Night: standby loads only — tiny value domain, slow timestamps."""
    cols = generate(n, seed=int(rng.integers(1 << 31)), burst=256)
    cols["value"] = _POWER_STATES[rng.integers(0, 16, size=n)]
    return cols


def dynamic_workload(
    batch_size: int,
    batches: int,
    batches_per_phase: int = 8,
    seed: int = 7,
) -> DynamicWorkload:
    """The phase-shifting stream of the Fig. 7 experiment."""
    return DynamicWorkload(
        schema=SCHEMA,
        phases=[
            Phase("burst", _phase_burst),
            Phase("peak", _phase_peak),
            Phase("night", _phase_night),
        ],
        batch_size=batch_size,
        batches_per_phase=batches_per_phase,
        seed=seed,
        limit=batches,
    )
