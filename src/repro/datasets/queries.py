"""The six evaluation queries of Table III and their benchmark configs.

``QUERY_TEXT`` reproduces Table III verbatim (slide 1).  Because the
paper's own Fig. 10 analysis finds slide size changes performance by <2 %
(the batch buffer absorbs cross-window state), the benchmark harness uses
``query_text(..., slide=<window>)`` — tumbling windows — so that batches
hold the paper's "100 windows per batch" without re-evaluating 99 %-
overlapping windows; correctness of slide < window is covered by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..stream.schema import Schema
from . import cluster_monitoring, linear_road, smart_grid

#: Table III, verbatim (normalized whitespace).
QUERY_TEXT: Dict[str, str] = {
    "q1": (
        "select timestamp, avg(value) as globalAvgLoad "
        "from SmartGridStr [range 1024 slide 1]"
    ),
    "q2": (
        "select timestamp, plug, household, house, avg(value) as localAvgLoad "
        "from SmartGridStr [range 1024 slide 1] "
        "group by plug, household, house"
    ),
    "q3": (
        "( select timestamp, vehicle, speed, highway, lane, direction, "
        "(position/5280) as segment from PosSpeedStr [range unbounded] ) "
        "as SegSpeedStr "
        "select distinct L.timestamp, L.vehicle, L.speed, L.highway, L.lane, "
        "L.direction, L.segment "
        "from SegSpeedStr [range 30 slide 1] as A, "
        "SegSpeedStr [partition by vehicle rows 1] as L "
        "where A.vehicle == L.vehicle"
    ),
    "q4": (
        "select timestamp, avg(speed), highway, lane, direction "
        "from PosSpeedStr [range 1024 slide 1] "
        "group by highway, lane, direction"
    ),
    "q5": (
        "select timestamp, category, sum(cpu) as totalCPU "
        "from TaskEvents [range 512 slide 1] "
        "group by category"
    ),
    "q6": (
        "select timestamp, eventType, userId, max(disk) as maxDisk "
        "from TaskEvents [range 512 slide 1] "
        "group by eventType, userId"
    ),
}


#: Q3 with its Linear-Road-faithful *time* window: the benchmark's "range
#: 30" means 30 seconds of position reports, not 30 tuples.  Table III's
#: count form stays in QUERY_TEXT (we reproduce the paper as written);
#: this variant exercises the engine's time-window support.
Q3_TIME_TEXT = (
    "( select timestamp, vehicle, speed, highway, lane, direction, "
    "(position/5280) as segment from PosSpeedStr [range unbounded] ) "
    "as SegSpeedStr "
    "select distinct L.timestamp, L.vehicle, L.speed, L.highway, L.lane, "
    "L.direction, L.segment "
    "from SegSpeedStr [range 30 seconds slide 30] as A, "
    "SegSpeedStr [partition by vehicle rows 1] as L "
    "where A.vehicle == L.vehicle"
)


@dataclass(frozen=True)
class QueryConfig:
    """Everything needed to run one evaluation query."""

    name: str
    stream: str
    schema: Schema
    window: int
    #: paper setup: windows per batch (100 for SG/LRB, 200 for cluster)
    windows_per_batch: int
    dataset: str
    make_source: Callable  # (batch_size, batches, seed) -> source

    def text(self, slide: Optional[int] = None) -> str:
        """Query text with the requested slide (None = Table III's slide 1)."""
        base = QUERY_TEXT[self.name]
        if slide is None:
            return base
        return base.replace("slide 1]", f"slide {slide}]")

    @property
    def catalog(self) -> Dict[str, Schema]:
        return {self.stream: self.schema}

    def batch_size(self, slide: Optional[int] = None) -> int:
        """Tuples per batch so the batch holds ``windows_per_batch`` windows.

        ``slide=None`` matches :meth:`text`'s default (Table III's slide 1).
        """
        s = 1 if slide is None else slide
        return (self.windows_per_batch - 1) * s + self.window


QUERIES: Dict[str, QueryConfig] = {
    "q1": QueryConfig(
        "q1", "SmartGridStr", smart_grid.SCHEMA, 1024, 100, "smart_grid",
        smart_grid.source,
    ),
    "q2": QueryConfig(
        "q2", "SmartGridStr", smart_grid.SCHEMA, 1024, 100, "smart_grid",
        smart_grid.source,
    ),
    "q3": QueryConfig(
        "q3", "PosSpeedStr", linear_road.SCHEMA, 30, 100, "linear_road",
        linear_road.source,
    ),
    "q4": QueryConfig(
        "q4", "PosSpeedStr", linear_road.SCHEMA, 1024, 100, "linear_road",
        linear_road.source,
    ),
    "q5": QueryConfig(
        "q5", "TaskEvents", cluster_monitoring.SCHEMA, 512, 200, "cluster",
        cluster_monitoring.source,
    ),
    "q6": QueryConfig(
        "q6", "TaskEvents", cluster_monitoring.SCHEMA, 512, 200, "cluster",
        cluster_monitoring.source,
    ),
}

#: dataset name -> query names, as grouped in the evaluation figures
DATASET_QUERIES: Dict[str, Tuple[str, ...]] = {
    "smart_grid": ("q1", "q2"),
    "linear_road": ("q3", "q4"),
    "cluster": ("q5", "q6"),
}
