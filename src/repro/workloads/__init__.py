"""repro.workloads — golden-fixture trace replay and evaluation harness.

Replays seeded multi-phase tenant traces (``traces``) through a query
corpus spanning the paper's Q1–Q6 and the widened SQL surface
(``corpus``), over both the single-engine and the supervised-fleet
execution paths, and scores every result against committed golden
fixtures (``fixtures``) into a pass-rate report (``replay``).
"""

from .corpus import QUERIES, QUICK_NAMES, CorpusEntry, get_entry, select_entries
from .fixtures import (
    FIXTURE_VERSION,
    check_fixture,
    decode_fixture,
    default_fixture_dir,
    encode_fixture,
    fixture_path,
    load_fixture,
    save_fixture,
)
from .replay import (
    CORPUS_MODULE,
    PATH_FLEET,
    PATH_SINGLE,
    PATHS,
    ReplayOutcome,
    WorkloadReport,
    bless_entries,
    replay,
    run_baseline,
    run_fleet,
    run_single,
)
from .traces import TRACES, WorkloadTrace, get_trace

__all__ = [
    "CORPUS_MODULE",
    "CorpusEntry",
    "FIXTURE_VERSION",
    "PATHS",
    "PATH_FLEET",
    "PATH_SINGLE",
    "QUERIES",
    "QUICK_NAMES",
    "ReplayOutcome",
    "TRACES",
    "WorkloadReport",
    "WorkloadTrace",
    "bless_entries",
    "check_fixture",
    "decode_fixture",
    "default_fixture_dir",
    "encode_fixture",
    "fixture_path",
    "get_entry",
    "get_trace",
    "load_fixture",
    "replay",
    "run_baseline",
    "run_fleet",
    "run_single",
    "save_fixture",
]
