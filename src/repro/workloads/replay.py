"""Trace replay: run the corpus through both engine paths, score fixtures.

Each selected corpus entry replays at its fixture-pinned geometry through

``single``
    one adaptive :class:`~repro.core.engine.CompressStreamDB` pipeline —
    the direct-on-compressed path the paper evaluates;
``fleet``
    a one-tenant :class:`~repro.serve.ServeSupervisor` run resolving the
    query via ``TenantSpec.query_module`` — the PR-6 serving layer with
    its checkpointing and virtual-time scheduling in the loop;

and every path's merged output is checked against the committed golden
fixture.  Blessing (``--bless``) re-records fixtures from the *baseline*
path (identity codecs, decode-first): the uncompressed reference
semantics, so a fixture can never encode a direct-path bug as expected.

Mismatches are scored into the pass rate (the campaign keeps going);
only harness misconfiguration — unknown query, missing/stale fixture —
raises :class:`~repro.errors.WorkloadError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.engine import CompressStreamDB, EngineConfig
from ..errors import WorkloadError
from ..serve import ServeSupervisor, TenantSpec
from ..sql.executor import QueryResult
from .corpus import CorpusEntry, select_entries
from .fixtures import check_fixture, load_fixture, save_fixture

PATH_SINGLE = "single"
PATH_FLEET = "fleet"
PATHS = (PATH_SINGLE, PATH_FLEET)

#: the module fleet tenants resolve corpus queries in
CORPUS_MODULE = "repro.workloads.corpus"


@dataclass
class ReplayOutcome:
    """One (query, path) check against the golden fixture."""

    query: str
    path: str
    ok: bool
    detail: str = ""
    n_rows: int = 0
    tuples: int = 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "query": self.query,
            "path": self.path,
            "ok": self.ok,
            "detail": self.detail,
            "n_rows": self.n_rows,
            "tuples": self.tuples,
        }


@dataclass
class WorkloadReport:
    """Pass-rate accounting for one replay campaign."""

    outcomes: List[ReplayOutcome] = field(default_factory=list)
    blessed: List[str] = field(default_factory=list)

    @property
    def checks(self) -> int:
        return len(self.outcomes)

    @property
    def passed(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def pass_rate(self) -> float:
        if not self.outcomes:
            return 1.0
        return self.passed / self.checks

    @property
    def tuples(self) -> int:
        return sum(o.tuples for o in self.outcomes)

    @property
    def failures(self) -> List[ReplayOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def to_json(self) -> Dict[str, Any]:
        return {
            "pass_rate": self.pass_rate,
            "checks": self.checks,
            "passed": self.passed,
            "failed": self.checks - self.passed,
            "blessed": list(self.blessed),
            "outcomes": [o.to_json() for o in self.outcomes],
        }

    def summary_rows(self) -> List[Tuple[str, str]]:
        return [
            ("queries", str(len({o.query for o in self.outcomes}))),
            ("checks", str(self.checks)),
            ("passed", str(self.passed)),
            ("failed", str(self.checks - self.passed)),
            ("pass rate", f"{self.pass_rate:.1%}"),
        ]


# ----- the three execution paths ---------------------------------------


def run_single(entry: CorpusEntry, mode: str = "adaptive") -> QueryResult:
    """One engine pipeline over the entry's pinned source."""
    engine = CompressStreamDB(
        catalog=entry.catalog,
        query=entry.sql,
        # calibration-only selection keeps the replay deterministic
        config=EngineConfig(mode=mode, profile_query=False),
    )
    report = engine.run(entry.source(), collect_outputs=True)
    assert report.outputs is not None
    return report.outputs


def run_baseline(entry: CorpusEntry) -> QueryResult:
    """Uncompressed decode-first reference semantics (the bless path)."""
    engine = CompressStreamDB(
        catalog=entry.catalog,
        query=entry.sql,
        config=EngineConfig(mode="baseline", force_decode=True, profile_query=False),
    )
    report = engine.run(entry.source(), collect_outputs=True)
    assert report.outputs is not None
    return report.outputs


def run_fleet(entry: CorpusEntry) -> QueryResult:
    """The entry through a one-tenant supervised serving run."""
    spec = TenantSpec(
        tenant=f"w-{entry.name}",
        query=entry.name,
        query_module=CORPUS_MODULE,
        batches=entry.batches,
        batch_size=entry.batch_size,
        seed=entry.seed,
    )
    supervisor = ServeSupervisor([spec])
    report = supervisor.run()
    if report.delivered_fraction != 1.0:
        raise WorkloadError(
            f"fleet replay of {entry.name!r} lost batches on a clean link "
            f"(delivered {report.delivered_fraction:.0%})"
        )
    return supervisor.merged_outputs(spec.tenant)


# ----- campaign driver --------------------------------------------------


def bless_entries(
    entries: Iterable[CorpusEntry],
    fixture_dir: Optional[Path] = None,
) -> List[str]:
    """Re-record golden fixtures from the baseline reference path."""
    blessed = []
    for entry in entries:
        save_fixture(entry, run_baseline(entry), fixture_dir)
        blessed.append(entry.name)
    return blessed


def replay(
    names: Optional[Iterable[str]] = None,
    trace: str = "",
    quick: bool = False,
    paths: Tuple[str, ...] = PATHS,
    bless: bool = False,
    fixture_dir: Optional[Path] = None,
) -> WorkloadReport:
    """Run a replay campaign; see the module docstring for the paths."""
    for path in paths:
        if path not in PATHS:
            raise WorkloadError(f"unknown replay path {path!r} (use {PATHS})")
    entries = select_entries(names, trace=trace, quick=quick)
    report = WorkloadReport()
    if bless:
        report.blessed = bless_entries(entries, fixture_dir)
    for entry in entries:
        load_fixture(entry.name, fixture_dir)  # fail fast before running
        for path in paths:
            result = (
                run_single(entry) if path == PATH_SINGLE else run_fleet(entry)
            )
            detail = check_fixture(entry, result, fixture_dir)
            report.outcomes.append(
                ReplayOutcome(
                    query=entry.name,
                    path=path,
                    ok=detail is None,
                    detail=detail or "",
                    n_rows=result.n_rows,
                    tuples=entry.batch_size * entry.batches,
                )
            )
    return report
