"""The workload query corpus: paper queries + new-surface queries.

Every entry pins its complete replay geometry — SQL text, source,
``(batch_size, batches, seed)`` — because the committed golden fixture
records the expected rows for exactly that geometry.  Entries duck-type
:class:`~repro.datasets.queries.QueryConfig` (``catalog``/``window``/
``text``/``make_source``), so the serving layer can replay any of them
through the fleet path via ``TenantSpec(query_module="repro.workloads
.corpus", query=<name>)`` without importing this package itself.

The corpus spans both halves of the dialect: the paper's Q1–Q6 (Table
III, tumbling form) and the PR-7 surface — ``ORDER BY``/``LIMIT`` on
windowed aggregates, ``OR`` in WHERE and HAVING, and the explicit
multi-way / LEFT OUTER window×partition joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..datasets.queries import QUERIES as PAPER_QUERIES
from ..errors import WorkloadError
from ..stream.batch import Batch
from ..stream.schema import Schema
from .traces import TRACES, WorkloadTrace

#: (batch_size, batches, seed) -> batch iterable
SourceFn = Callable[..., Iterable[Batch]]


@dataclass(frozen=True)
class CorpusEntry:
    """One replayable query with its full, fixture-pinned geometry."""

    name: str
    sql: str
    stream: str
    schema: Schema
    source_fn: SourceFn = field(repr=False)
    batch_size: int
    batches: int
    seed: int
    trace: str = ""  # "" = a paper dataset source, else a TRACES name
    description: str = ""
    tags: Tuple[str, ...] = ()
    #: serve-layer compatibility: sessions render text via
    #: ``cfg.text(slide=cfg.window)``; corpus SQL is already final
    window: int = 0

    @property
    def catalog(self) -> Dict[str, Schema]:
        return {self.stream: self.schema}

    def text(self, slide: Optional[int] = None) -> str:
        return self.sql

    def make_source(
        self,
        batch_size: Optional[int] = None,
        batches: Optional[int] = None,
        seed: int = 0,
    ) -> Iterable[Batch]:
        return self.source_fn(
            batch_size=batch_size or self.batch_size,
            batches=self.batches if batches is None else batches,
            seed=seed,
        )

    def source(self) -> Iterable[Batch]:
        """The fixture-pinned source: exactly the recorded geometry."""
        return self.make_source(self.batch_size, self.batches, self.seed)


def _paper_entry(name: str, batches: int, windows_per_batch: int = 1) -> CorpusEntry:
    cfg = PAPER_QUERIES[name]
    return CorpusEntry(
        name=name,
        sql=cfg.text(slide=cfg.window),
        stream=cfg.stream,
        schema=cfg.schema,
        source_fn=cfg.make_source,
        batch_size=cfg.window * windows_per_batch,
        batches=batches,
        seed=11,
        description=f"Table III {name} (tumbling form)",
        tags=("paper",),
    )


def _trace_entry(
    name: str,
    trace: WorkloadTrace,
    sql: str,
    tags: Tuple[str, ...],
    description: str = "",
    batch_size: Optional[int] = None,
    batches: Optional[int] = None,
    seed: int = 5,
) -> CorpusEntry:
    return CorpusEntry(
        name=name,
        sql=sql,
        stream=trace.stream,
        schema=trace.schema,
        source_fn=trace.make_source,
        batch_size=batch_size or trace.batch_size,
        batches=batches or trace.batches,
        seed=seed,
        trace=trace.name,
        description=description,
        tags=tags,
    )


def _build_corpus() -> Dict[str, CorpusEntry]:
    sg = TRACES["smart_grid_spikes"]
    cm = TRACES["cluster_diurnal"]
    fl = TRACES["codec_flip_adversarial"]
    entries: List[CorpusEntry] = [
        _paper_entry("q1", batches=2),
        _paper_entry("q2", batches=2),
        _paper_entry("q3", batches=3, windows_per_batch=4),
        _paper_entry("q4", batches=2),
        _paper_entry("q5", batches=2),
        _paper_entry("q6", batches=2),
        _trace_entry(
            "sg_top_plugs",
            sg,
            "select plug, avg(value) as avgLoad "
            "from SmartGridStr [range 256 slide 256] "
            "group by plug order by avgLoad desc, plug limit 3",
            tags=("order-limit", "quick"),
            description="top-3 plugs by average load per window",
        ),
        _trace_entry(
            "sg_or_filter",
            sg,
            "select timestamp, house, value "
            "from SmartGridStr [range unbounded] "
            "where value > 2000 or house == 0",
            tags=("or-predicate",),
            description="spike readings or the monitored house",
            batches=3,
        ),
        _trace_entry(
            "sg_having_or",
            sg,
            "select house, avg(value) as houseLoad, count(*) as n "
            "from SmartGridStr [range 256 slide 256] "
            "group by house having houseLoad > 1200 or n > 180",
            tags=("having-or",),
            description="hot or chatty houses per window",
        ),
        _trace_entry(
            "cm_busy_users",
            cm,
            "select userId, sum(cpu) as totalCPU "
            "from TaskEvents [range 256 slide 256] "
            "group by userId order by totalCPU desc, userId limit 5",
            tags=("order-limit", "quick"),
            description="top-5 cpu consumers per window",
        ),
        _trace_entry(
            "cm_event_filter",
            cm,
            "select timestamp, cpu "
            "from TaskEvents [range unbounded] "
            "where eventType == 0 or eventType == 1 "
            "or eventType == 3 or eventType == 5",
            tags=("or-predicate", "morph"),
            description="lifecycle-event slice; the equality-only OR on a "
            "small-domain column is the morph rule's target shape",
            batches=3,
        ),
        _trace_entry(
            "cm_category_mix",
            cm,
            "select category, count(*) as n, max(disk) as peakDisk "
            "from TaskEvents [range 256 slide 256] "
            "group by category "
            "having n > 40 or peakDisk > 0.15 "
            "order by n desc, category limit 4",
            tags=("having-or", "order-limit"),
            description="busiest or most disk-hungry categories",
        ),
        _trace_entry(
            "flip_multiway",
            fl,
            "select distinct K.key, K.v, R.w "
            "from FlipStr [range 64 slide 64] as A "
            "join FlipStr [partition by key rows 1] as K on A.key == K.key "
            "join FlipStr [partition by key rows 1] as R on A.ref == R.key",
            tags=("multiway-join", "quick"),
            description="three-source inner join (probe + two sides)",
            batch_size=256,
            batches=4,
        ),
        _trace_entry(
            "flip_outer",
            fl,
            "select distinct K.key, K.v, R.key as refKey, R.w as refW "
            "from FlipStr [range 64 slide 64] as A "
            "join FlipStr [partition by key rows 1] as K on A.key == K.key "
            "left join FlipStr [partition by key rows 1] as R "
            "on A.ref == R.key",
            tags=("outer-join",),
            description="LEFT OUTER side: misses keep the probe ref, NaN w",
            batch_size=256,
            batches=4,
        ),
        _trace_entry(
            "flip_order_limit",
            fl,
            "select key, avg(v) as meanV, count(*) as n "
            "from FlipStr [range 128 slide 128] "
            "group by key order by meanV desc, key limit 3",
            tags=("order-limit",),
            description="per-window extremes of the flipping payload",
            batch_size=256,
            batches=4,
        ),
    ]
    corpus = {}
    for entry in entries:
        if entry.name in corpus:
            raise WorkloadError(f"duplicate corpus entry {entry.name!r}")
        corpus[entry.name] = entry
    return corpus


#: the registry the serving layer resolves ``query_module`` lookups in
QUERIES: Dict[str, CorpusEntry] = _build_corpus()

#: fast subset for CI smoke runs: one per trace plus one paper query
QUICK_NAMES: Tuple[str, ...] = ("q1", "sg_top_plugs", "cm_busy_users", "flip_multiway")


def get_entry(name: str) -> CorpusEntry:
    if name not in QUERIES:
        raise WorkloadError(
            f"unknown workload query {name!r} (choose from {sorted(QUERIES)})"
        )
    return QUERIES[name]


def select_entries(
    names: Optional[Iterable[str]] = None,
    trace: str = "",
    quick: bool = False,
) -> List[CorpusEntry]:
    """Resolve a replay selection; filters compose (intersection)."""
    selected = [get_entry(n) for n in names] if names else list(QUERIES.values())
    if trace:
        selected = [e for e in selected if e.trace == trace]
    if quick:
        selected = [e for e in selected if e.name in QUICK_NAMES]
    if not selected:
        raise WorkloadError("the workload selection matched no queries")
    return selected
