"""Synthetic tenant traces for the workload replay harness.

Each trace is a named, seeded phase schedule over
:class:`~repro.stream.dynamics.DynamicWorkload`: the stream's statistical
character shifts at phase boundaries, so replaying a trace drives the
adaptive selector through regime changes while the golden-fixture
comparison pins the query *results* — exercising exactly the property
the paper claims (codec choices move, answers do not).

Three regimes ship by default:

``smart_grid_spikes``
    the DEBS smart-grid stream alternating steady load, a grid-wide
    demand spike and a standby lull — value range and variance jump
    between phases;
``cluster_diurnal``
    Google-cluster task events cycling day (interactive, many users,
    busy cpus) and night (few batch users, idle cpus) load;
``codec_flip_adversarial``
    a stream engineered so the best codec flips every phase (constant →
    RLE, monotone ramp → delta/EG, white noise → identity/NS, tiny value
    pool → dictionary), with a ``ref`` column that misses its partition
    key three times out of four — the outer-join NaN path stays hot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..datasets import cluster_monitoring, smart_grid
from ..errors import WorkloadError
from ..stream.dynamics import DynamicWorkload, Phase
from ..stream.schema import Field, Schema

#: the adversarial stream: ``key`` always hits its partition side,
#: ``ref`` ranges over 4x the key domain so inner joins drop and outer
#: joins fill; ``v``/``w`` carry the codec-flipping payloads
FLIP_SCHEMA = Schema(
    [
        Field("ts", "int", 8),
        Field("key", "int", 4),
        Field("ref", "int", 4),
        Field("v", "float", 4, decimals=2),
        Field("w", "int", 4),
    ]
)

N_FLIP_KEYS = 8
_FLIP_BASE_TS = 1_600_000_000
#: dictionary-phase value pool: few distinct, non-trivial floats
_FLIP_POOL = np.round(np.linspace(-12.5, 87.5, 12), 2)


@dataclass(frozen=True)
class WorkloadTrace:
    """One replayable tenant trace: a schema plus a phase schedule."""

    name: str
    stream: str
    schema: Schema
    phases: Tuple[Phase, ...]
    description: str = ""
    #: default replay geometry — fixtures are recorded at exactly this
    #: (batch_size, batches, seed), so both replay paths must use it too
    batch_size: int = 512
    batches: int = 6
    batches_per_phase: int = 2

    @property
    def catalog(self) -> Dict[str, Schema]:
        return {self.stream: self.schema}

    def make_source(
        self,
        batch_size: Optional[int] = None,
        batches: Optional[int] = None,
        seed: int = 0,
    ) -> DynamicWorkload:
        return DynamicWorkload(
            schema=self.schema,
            phases=list(self.phases),
            batch_size=batch_size or self.batch_size,
            batches_per_phase=self.batches_per_phase,
            seed=seed,
            limit=self.batches if batches is None else batches,
        )


# ----- smart-grid spikes ----------------------------------------------------


def _sg_steady(rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
    """Ordinary mixed load: the generator's stationary regime."""
    return smart_grid.generate(n, seed=int(rng.integers(1 << 31)))


def _sg_spike(rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
    """Grid-wide demand spike: heavy loads, wide spread, every house on."""
    cols = smart_grid.generate(n, seed=int(rng.integers(1 << 31)), burst=1)
    cols["value"] = np.round(rng.uniform(1800.0, 2400.0, size=n), 2)
    return cols


def _sg_lull(rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
    """Post-spike standby: a handful of tiny discrete loads, long runs."""
    cols = smart_grid.generate(n, seed=int(rng.integers(1 << 31)), burst=256)
    states = np.round(np.linspace(0.0, 5.0, 8), 2)
    cols["value"] = states[rng.integers(0, states.size, size=n)]
    return cols


# ----- cluster diurnal ------------------------------------------------------


def _cm_day(rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
    """Daytime interactive load: many users, busy cpus, chatty events."""
    return cluster_monitoring.generate(n, seed=int(rng.integers(1 << 31)))


def _cm_night(rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
    """Night batch window: few service users, idle cpus, one event type."""
    cols = cluster_monitoring.generate(n, seed=int(rng.integers(1 << 31)))
    cols["userId"] = rng.integers(0, 6, size=n)
    cols["eventType"] = np.zeros(n, dtype=np.int64)
    cols["cpu"] = np.round(rng.uniform(0.0125, 0.05, size=n), 4)
    return cols


# ----- adversarial codec flipper -------------------------------------------


def _flip_frame(rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
    """Shared key/ref/ts scaffolding: every phase joins the same way."""
    return {
        "ts": _FLIP_BASE_TS + np.arange(n) // 16,
        "key": rng.integers(0, N_FLIP_KEYS, size=n),
        "ref": rng.integers(0, 4 * N_FLIP_KEYS, size=n),
    }


def _flip_constant(rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
    cols = _flip_frame(rng, n)
    cols["v"] = np.full(n, 42.0)
    cols["w"] = np.full(n, 7, dtype=np.int64)
    return cols


def _flip_ramp(rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
    cols = _flip_frame(rng, n)
    cols["v"] = np.round(np.arange(n) * 0.25, 2)
    cols["w"] = np.arange(n, dtype=np.int64)
    return cols


def _flip_noise(rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
    cols = _flip_frame(rng, n)
    cols["v"] = np.round(rng.uniform(-1000.0, 1000.0, size=n), 2)
    cols["w"] = rng.integers(-(1 << 20), 1 << 20, size=n)
    return cols


def _flip_dict(rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
    cols = _flip_frame(rng, n)
    cols["v"] = _FLIP_POOL[rng.integers(0, _FLIP_POOL.size, size=n)]
    cols["w"] = rng.integers(0, 4, size=n)
    return cols


TRACES: Dict[str, WorkloadTrace] = {
    trace.name: trace
    for trace in (
        WorkloadTrace(
            name="smart_grid_spikes",
            stream="SmartGridStr",
            schema=smart_grid.SCHEMA,
            phases=(
                Phase("steady", _sg_steady),
                Phase("spike", _sg_spike),
                Phase("lull", _sg_lull),
            ),
            description="smart-grid load with grid-wide demand spikes",
        ),
        WorkloadTrace(
            name="cluster_diurnal",
            stream="TaskEvents",
            schema=cluster_monitoring.SCHEMA,
            phases=(
                Phase("day", _cm_day),
                Phase("night", _cm_night),
            ),
            description="cluster task events cycling day/night load",
        ),
        WorkloadTrace(
            name="codec_flip_adversarial",
            stream="FlipStr",
            schema=FLIP_SCHEMA,
            phases=(
                Phase("constant", _flip_constant),
                Phase("ramp", _flip_ramp),
                Phase("noise", _flip_noise),
                Phase("dict", _flip_dict),
            ),
            description="phases engineered to flip the best codec",
            batches=8,
            batches_per_phase=2,
        ),
    )
}


def get_trace(name: str) -> WorkloadTrace:
    if name not in TRACES:
        raise WorkloadError(
            f"unknown trace {name!r} (choose from {sorted(TRACES)})"
        )
    return TRACES[name]
