"""Golden expected-result fixtures: canonical JSON snapshots of queries.

A fixture records the canonicalized output rows of one corpus entry at
its pinned replay geometry.  Canonicalization is *shared with the
differential oracle* (:func:`repro.oracle.differential.canonicalize` /
:func:`~repro.oracle.differential.compare_results`): rows sort
lexicographically on rounded values, float columns compare within
tolerance with ``NaN == NaN`` (outer-join misses), integer columns must
match exactly.  NaN encodes as JSON ``null`` so fixtures stay strict
JSON.

Fixtures are committed under ``src/repro/workloads/fixtures/`` and
regenerated with ``python -m repro workloads --bless`` whenever a
semantic change is intentional; the diff of the blessed files *is* the
review surface for that change.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import WorkloadError
from ..oracle.differential import compare_results
from ..oracle.differential import canonicalize as canonicalize  # re-export
from ..sql.executor import QueryResult
from .corpus import CorpusEntry

FIXTURE_VERSION = 1

#: fixture float comparisons: results cross machines and BLAS builds, so
#: the tolerance is looser than the oracle's within-process 1e-9
RTOL = 1e-7
ATOL = 1e-9


def default_fixture_dir() -> Path:
    return Path(__file__).resolve().parent / "fixtures"


def fixture_path(name: str, fixture_dir: Optional[Path] = None) -> Path:
    return (fixture_dir or default_fixture_dir()) / f"{name}.json"


def _encode_column(col: np.ndarray) -> Dict[str, Any]:
    if np.issubdtype(col.dtype, np.floating):
        values: List[Any] = [
            None if math.isnan(v) else float(v) for v in col.tolist()
        ]
        return {"dtype": "float", "values": values}
    return {"dtype": "int", "values": [int(v) for v in col.tolist()]}


def _decode_column(spec: Dict[str, Any]) -> np.ndarray:
    values = spec["values"]
    if spec["dtype"] == "float":
        return np.array(
            [math.nan if v is None else float(v) for v in values],
            dtype=np.float64,
        )
    return np.asarray(values, dtype=np.int64)


def encode_fixture(entry: CorpusEntry, result: QueryResult) -> Dict[str, Any]:
    """Canonicalize a result into the committed JSON document shape."""
    canonical = canonicalize(result)
    return {
        "version": FIXTURE_VERSION,
        "query": entry.name,
        "sql": entry.sql,
        "trace": entry.trace,
        "geometry": {
            "batch_size": entry.batch_size,
            "batches": entry.batches,
            "seed": entry.seed,
        },
        "n_rows": result.n_rows,
        "columns": {name: _encode_column(col) for name, col in canonical.items()},
    }


def decode_fixture(doc: Dict[str, Any]) -> QueryResult:
    columns = {
        name: _decode_column(spec) for name, spec in doc["columns"].items()
    }
    return QueryResult(columns=columns, n_rows=int(doc["n_rows"]))


def save_fixture(
    entry: CorpusEntry,
    result: QueryResult,
    fixture_dir: Optional[Path] = None,
) -> Path:
    path = fixture_path(entry.name, fixture_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = encode_fixture(entry, result)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return path


def load_fixture(
    name: str, fixture_dir: Optional[Path] = None
) -> Dict[str, Any]:
    path = fixture_path(name, fixture_dir)
    if not path.exists():
        raise WorkloadError(
            f"no golden fixture for {name!r} at {path} — record one with "
            f"`python -m repro workloads --bless --query {name}`"
        )
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise WorkloadError(f"fixture {path} is not valid JSON: {exc}") from exc
    if doc.get("version") != FIXTURE_VERSION:
        raise WorkloadError(
            f"fixture {path} has version {doc.get('version')!r}, "
            f"expected {FIXTURE_VERSION} — re-bless it"
        )
    return doc


def check_fixture(
    entry: CorpusEntry,
    result: QueryResult,
    fixture_dir: Optional[Path] = None,
) -> Optional[str]:
    """None when the result matches the committed fixture, else why not.

    A stale *geometry* (the fixture was recorded for different sizes or
    SQL) raises :class:`WorkloadError` — that is harness misconfiguration,
    not a result mismatch, and must not be scored into the pass rate.
    """
    doc = load_fixture(entry.name, fixture_dir)
    recorded = doc["geometry"]
    current = {
        "batch_size": entry.batch_size,
        "batches": entry.batches,
        "seed": entry.seed,
    }
    if recorded != current or doc["sql"] != entry.sql:
        raise WorkloadError(
            f"fixture for {entry.name!r} is stale (geometry or SQL changed) "
            f"— re-bless it"
        )
    return compare_results(decode_fixture(doc), result, rtol=RTOL, atol=ATOL)
