"""Unreliable-link fault injection (Sec. IV-A edge deployments).

The paper's client-server testbed ships compressed frames over a real
0-1 Gbps network; multi-layer edge topologies add links that drop,
corrupt, truncate, duplicate, and stall frames.  This module makes the
virtual network unreliable *deterministically*: a seeded
:class:`FaultInjector` draws every fault from one RNG stream, so a run
with the same seed and the same fault profile replays the exact same
fault sequence — benchmark curves and recovery tests are reproducible
bit-for-bit.

:class:`FaultyChannel` wraps any existing channel (:class:`Channel`,
:class:`QueuedChannel`, :class:`MultiHopChannel`) without changing its
timing model: time and byte accounting delegate to the wrapped channel,
and fault injection happens on the frame bytes as they "cross" it.  For
multi-hop paths each hop can carry its own :class:`FaultProfile` (a lossy
sensor uplink in front of a clean backbone); a frame dropped at hop *i*
never reaches hop *i+1*, while a duplicate forked at hop *i* traverses
the remaining hops independently.

The recovery side lives in :mod:`repro.net.transport`; the run-level
outcome is summarized in a :class:`FaultReport` attached to
:class:`~repro.core.metrics.RunReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ChannelError
from .channel import Channel, QueuedChannel
from .topology import MultiHopChannel

#: The injectable fault kinds, in the order the injector draws them.
FAULT_KINDS = ("duplicate", "drop", "corrupt", "truncate", "stall")


@dataclass(frozen=True)
class FaultProfile:
    """Per-link fault rates; all draws come from one seeded RNG stream.

    Rates are per-frame probabilities in [0, 1].  ``stall_s`` is the extra
    virtual delay a stalled frame pays on top of its wire time.  A default
    profile (all rates zero) is a lossless link, so wrapping a channel
    with it only adds the frame serialization path.
    """

    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    truncate_rate: float = 0.0
    duplicate_rate: float = 0.0
    stall_rate: float = 0.0
    stall_s: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "drop_rate", "corrupt_rate", "truncate_rate", "duplicate_rate", "stall_rate"
        ):
            rate = getattr(self, name)
            if not math.isfinite(rate) or not 0.0 <= rate <= 1.0:
                raise ChannelError(f"{name} must be a probability in [0, 1]")
        if not math.isfinite(self.stall_s) or self.stall_s < 0:
            raise ChannelError("stall_s must be finite and non-negative")

    @property
    def is_lossless(self) -> bool:
        return (
            self.drop_rate == 0.0
            and self.corrupt_rate == 0.0
            and self.truncate_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.stall_rate == 0.0
        )

    @classmethod
    def lossy(cls, rate: float, seed: int = 0) -> "FaultProfile":
        """Convenience: drop and corrupt at the same rate."""
        return cls(drop_rate=rate, corrupt_rate=rate, seed=seed)


class FaultInjector:
    """Applies one profile's faults to frames, counting every injection."""

    def __init__(self, profile: FaultProfile):
        self.profile = profile
        self._rng = np.random.default_rng(profile.seed)
        self.counts: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    def _hit(self, rate: float) -> bool:
        # draw only for enabled faults: the stream length then depends on
        # the profile alone, keeping replays aligned across frame contents
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return float(self._rng.random()) < rate

    def _corrupt(self, frame: bytes) -> bytes:
        data = bytearray(frame)
        nflips = int(self._rng.integers(1, 5))
        for _ in range(nflips):
            pos = int(self._rng.integers(0, len(data)))
            data[pos] ^= 1 << int(self._rng.integers(0, 8))
        return bytes(data)

    def _truncate(self, frame: bytes) -> bytes:
        cut = int(self._rng.integers(0, len(frame)))
        return frame[:cut]

    def apply(self, frame: bytes) -> List[Tuple[bytes, float]]:
        """Push one frame through the lossy link.

        Returns the delivered copies as ``(payload, extra_delay_s)``
        pairs: empty when the frame is dropped, two entries when it is
        duplicated.  Corruption/truncation/stall are drawn independently
        per delivered copy, so a duplicate can survive while the original
        arrives mangled.
        """
        if not frame:
            raise ChannelError("cannot inject faults into an empty frame")
        p = self.profile
        copies = 1
        if self._hit(p.duplicate_rate):
            self.counts["duplicate"] += 1
            copies = 2
        delivered: List[Tuple[bytes, float]] = []
        for _ in range(copies):
            if self._hit(p.drop_rate):
                self.counts["drop"] += 1
                continue
            payload = frame
            if self._hit(p.corrupt_rate):
                self.counts["corrupt"] += 1
                payload = self._corrupt(payload)
            if self._hit(p.truncate_rate):
                self.counts["truncate"] += 1
                payload = self._truncate(payload)
            delay = 0.0
            if self._hit(p.stall_rate):
                self.counts["stall"] += 1
                delay = p.stall_s
            delivered.append((payload, delay))
        return delivered

    @property
    def injected_total(self) -> int:
        return sum(self.counts.values())


class FaultyChannel(Channel):
    """An unreliable wrapper around any virtual channel.

    Timing and byte accounting delegate to the wrapped channel (the
    wrapper mirrors its counters so existing reporting keeps working);
    :meth:`deliver` additionally pushes frame bytes through the fault
    injector(s).  With ``hop_profiles`` the wrapped channel must be a
    :class:`MultiHopChannel` with one profile per hop.
    """

    def __init__(
        self,
        inner: Channel,
        profile: Optional[FaultProfile] = None,
        hop_profiles: Optional[Sequence[FaultProfile]] = None,
    ):
        if isinstance(inner, FaultyChannel):
            raise ChannelError("cannot wrap a FaultyChannel in a FaultyChannel")
        if profile is not None and hop_profiles is not None:
            raise ChannelError("give either profile or hop_profiles, not both")
        if hop_profiles is not None:
            if not isinstance(inner, MultiHopChannel):
                raise ChannelError("hop_profiles requires a MultiHopChannel")
            if len(hop_profiles) != len(inner.hops):
                raise ChannelError(
                    f"{len(hop_profiles)} hop profiles for "
                    f"{len(inner.hops)} hops"
                )
            profiles: Sequence[FaultProfile] = list(hop_profiles)
        else:
            profiles = [profile or FaultProfile()]
        self.inner = inner
        self.injectors = [FaultInjector(p) for p in profiles]
        super().__init__(
            bandwidth_mbps=inner.bandwidth_mbps, latency_s=inner.latency_s
        )

    # ----- Channel interface (delegating) ---------------------------------

    def _sync_counters(self) -> None:
        self.bytes_sent = self.inner.bytes_sent
        self.batches_sent = self.inner.batches_sent
        self.seconds_spent = self.inner.seconds_spent

    def transmit_seconds(self, nbytes: int) -> float:
        return self.inner.transmit_seconds(nbytes)

    def transmit(self, nbytes: int) -> float:
        seconds = self.inner.transmit(nbytes)
        self._sync_counters()
        return seconds

    def send(self, nbytes: int, ready_time: float) -> Tuple[float, float]:
        """Queued-link send; only valid around a :class:`QueuedChannel`."""
        if not isinstance(self.inner, QueuedChannel):
            raise ChannelError("send() requires a QueuedChannel inside")
        result = self.inner.send(nbytes, ready_time)
        self._sync_counters()
        return result

    def reset(self) -> None:
        self.inner.reset()
        self._sync_counters()

    # ----- fault injection ------------------------------------------------

    def deliver(self, frame: bytes) -> List[Tuple[bytes, float]]:
        """Run one frame through every hop's injector in sequence."""
        copies: List[Tuple[bytes, float]] = [(frame, 0.0)]
        for injector in self.injectors:
            survived: List[Tuple[bytes, float]] = []
            for payload, delay in copies:
                if not payload:
                    # fully truncated upstream: nothing left to forward
                    continue
                for next_payload, extra in injector.apply(payload):
                    survived.append((next_payload, delay + extra))
            copies = survived
        return copies

    @property
    def injected_counts(self) -> Dict[str, int]:
        """Injection counters summed across hops."""
        totals = {kind: 0 for kind in FAULT_KINDS}
        for injector in self.injectors:
            for kind, count in injector.counts.items():
                totals[kind] += count
        return totals


@dataclass(frozen=True)
class DeadLetter:
    """A batch the transport gave up on after exhausting its retries."""

    seq: int
    tuples: int
    attempts: int
    reason: str


@dataclass
class FaultReport:
    """Run-level fault and recovery accounting (attached to RunReport).

    The core invariant — checked by the robustness test suite — is
    ``detected == recovered + quarantined``: every batch whose delivery
    failed at least once was either eventually delivered intact or ended
    in the dead-letter list; none crash the run or slip through corrupted.
    """

    #: frames the channel actually mangled, per fault kind
    injected: Dict[str, int] = field(
        default_factory=lambda: {kind: 0 for kind in FAULT_KINDS}
    )
    #: batches that hit at least one failed delivery attempt
    detected: int = 0
    #: retransmission attempts issued (beyond each batch's first send)
    retried: int = 0
    #: batches delivered intact after at least one failure
    recovered: int = 0
    #: batches abandoned to the dead-letter list
    quarantined: int = 0
    quarantined_tuples: int = 0
    #: receiver-side integrity failures (envelope or frame CRC/format)
    corrupt_frames: int = 0
    #: sender-side retransmission timeouts (nothing arrived at all)
    timeouts: int = 0
    #: valid frames discarded because their sequence number was already seen
    duplicates_discarded: int = 0
    #: virtual seconds spent on timeouts, backoff waits and retransmissions
    retry_seconds: float = 0.0
    dead_letters: List[DeadLetter] = field(default_factory=list)
    #: client-side codec demotions (CodecDemotion records)
    codec_demotions: List = field(default_factory=list)

    @property
    def injected_total(self) -> int:
        return sum(self.injected.values())

    def summary(self) -> str:
        return (
            f"injected={self.injected_total} detected={self.detected} "
            f"retried={self.retried} recovered={self.recovered} "
            f"quarantined={self.quarantined} "
            f"retry_time={self.retry_seconds:.3f}s "
            f"demotions={len(self.codec_demotions)}"
        )
