"""Reliable delivery of compressed frames over an unreliable channel.

The wire format (``repro.wire.format``) *detects* transit corruption via
its CRC trailer; this module *recovers* from it.  The protocol is a
stop-and-wait ARQ in virtual time, mirroring what the paper's client and
server would run over a real lossy edge link:

* every batch frame is wrapped in a sequence-numbered transport envelope
  with its own CRC (so a bit-flip in the sequence number itself is caught
  and cannot confuse deduplication);
* a frame that arrives corrupted (envelope CRC, frame CRC, or wire-format
  parse failure) triggers a NACK and a retransmission;
* a frame that never arrives (dropped or truncated to nothing) triggers a
  retransmission timeout;
* retransmissions back off exponentially — ``backoff_base_s * factor**k``
  capped at ``backoff_cap_s`` — in *virtual* seconds, so runs remain
  deterministic and byte-reproducible;
* duplicate deliveries are deduplicated by sequence number;
* after ``max_retries`` retransmissions the batch is quarantined to the
  dead-letter list and the stream moves on — a 100 %-loss link terminates
  cleanly instead of hanging or crashing.

All timing is charged to the wrapped channel, so retransmitted bytes show
up in the byte counters and the goodput-vs-fault-rate benchmark measures
the real cost of recovery.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Optional, Set, Tuple

from ..errors import TransportError
from ..stream.batch import CompressedBatch
from ..stream.schema import Schema
from ..wire.format import WireFormatError, deserialize_batch, serialize_batch
from .channel import QueuedChannel
from .faults import DeadLetter, FaultReport, FaultyChannel

ENVELOPE_MAGIC = b"CSTX"
_HEADER = struct.Struct("<4sI")  # magic, sequence number
_CRC = struct.Struct("<I")


def pack_envelope(seq: int, frame: bytes) -> bytes:
    """Wrap a wire frame with a sequence number and an envelope CRC."""
    if seq < 0 or seq > 0xFFFFFFFF:
        raise TransportError("sequence number out of range")
    body = _HEADER.pack(ENVELOPE_MAGIC, seq) + frame
    return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


def unpack_envelope(data: bytes) -> Tuple[int, bytes]:
    """Validate an envelope and return ``(seq, frame)``."""
    if len(data) < _HEADER.size + _CRC.size:
        raise TransportError("envelope too short")
    body, (crc,) = data[: -_CRC.size], _CRC.unpack(data[-_CRC.size:])
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise TransportError("envelope checksum mismatch")
    magic, seq = _HEADER.unpack_from(body, 0)
    if magic != ENVELOPE_MAGIC:
        raise TransportError("bad envelope magic")
    return int(seq), body[_HEADER.size:]


@dataclass(frozen=True)
class ReliabilityConfig:
    """Retry/backoff knobs of the recovery protocol (virtual seconds)."""

    #: retransmissions allowed per batch beyond the first attempt
    max_retries: int = 8
    #: retransmission timeout when nothing arrives (a dropped frame)
    rto_s: float = 0.05
    backoff_base_s: float = 0.01
    backoff_factor: float = 2.0
    backoff_cap_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise TransportError("max_retries cannot be negative")
        if self.rto_s < 0 or self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise TransportError("timeouts cannot be negative")
        if self.backoff_factor < 1.0:
            raise TransportError("backoff_factor must be >= 1")

    def backoff_s(self, retry_index: int) -> float:
        """Capped exponential backoff before retransmission ``retry_index``."""
        return min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_factor ** retry_index,
        )


@dataclass
class TransportOutcome:
    """Result of shipping one batch through the reliable link."""

    #: the batch as reconstructed by the receiver; None when quarantined
    delivered: Optional[CompressedBatch]
    #: total virtual seconds: wire time of every attempt + stalls,
    #: timeouts and backoff waits
    seconds: float
    #: send attempts made (1 = clean first try)
    attempts: int
    #: envelope bytes that crossed the link (all attempts)
    bytes_on_wire: int

    @property
    def quarantined(self) -> bool:
        return self.delivered is None


class ReliableTransport:
    """Stop-and-wait ARQ over a :class:`FaultyChannel`.

    The sender side serializes each :class:`CompressedBatch` through the
    binary wire format and retransmits until the receiver side — which
    validates the envelope and frame and deduplicates by sequence number
    — acknowledges an intact copy, or the retry budget is exhausted.
    """

    def __init__(
        self,
        channel: FaultyChannel,
        schema: Schema,
        config: Optional[ReliabilityConfig] = None,
    ):
        if not isinstance(channel, FaultyChannel):
            raise TransportError("ReliableTransport requires a FaultyChannel")
        self.channel = channel
        self.schema = schema
        self.config = config or ReliabilityConfig()
        self.report = FaultReport()
        self._next_seq = 0
        self._seen: Set[int] = set()

    # ----- sender ----------------------------------------------------------

    def _transmit(self, nbytes: int, ready_time: Optional[float]) -> float:
        if ready_time is not None and isinstance(self.channel.inner, QueuedChannel):
            seconds, _ = self.channel.send(nbytes, ready_time)
            return seconds
        return self.channel.transmit(nbytes)

    def send_batch(
        self,
        compressed: CompressedBatch,
        ready_time: Optional[float] = None,
    ) -> TransportOutcome:
        """Ship one batch, retrying until delivered or quarantined."""
        frame = serialize_batch(compressed)
        seq = self._next_seq
        self._next_seq += 1
        envelope = pack_envelope(seq, frame)
        cfg = self.config

        seconds = 0.0
        bytes_on_wire = 0
        failures = 0
        delivered: Optional[CompressedBatch] = None
        attempts = 0
        while attempts <= cfg.max_retries:
            attempts += 1
            is_retry = attempts > 1
            wire = self._transmit(
                len(envelope),
                None if ready_time is None else ready_time + seconds,
            )
            seconds += wire
            bytes_on_wire += len(envelope)
            if is_retry:
                self.report.retry_seconds += wire
            copies = self.channel.deliver(envelope)
            stall = sum(extra for _, extra in copies)
            seconds += stall
            if is_retry:
                self.report.retry_seconds += stall
            delivered = self._receive(copies, seq)
            if delivered is not None:
                break
            failures += 1
            if not copies:
                # nothing arrived: the sender only learns via timeout
                self.report.timeouts += 1
                seconds += cfg.rto_s
                self.report.retry_seconds += cfg.rto_s
            if attempts <= cfg.max_retries:
                backoff = cfg.backoff_s(attempts - 1)
                seconds += backoff
                self.report.retried += 1
                self.report.retry_seconds += backoff

        if failures:
            self.report.detected += 1
            if delivered is not None:
                self.report.recovered += 1
            else:
                self.report.quarantined += 1
                self.report.quarantined_tuples += compressed.n
                self.report.dead_letters.append(
                    DeadLetter(
                        seq=seq,
                        tuples=compressed.n,
                        attempts=attempts,
                        reason=(
                            f"undelivered after {attempts} attempts "
                            f"({cfg.max_retries} retries)"
                        ),
                    )
                )
        return TransportOutcome(
            delivered=delivered,
            seconds=seconds,
            attempts=attempts,
            bytes_on_wire=bytes_on_wire,
        )

    # ----- receiver --------------------------------------------------------

    def _receive(self, copies, expected_seq: int) -> Optional[CompressedBatch]:
        """Validate delivered copies; return the first intact new batch."""
        accepted: Optional[CompressedBatch] = None
        for payload, _delay in copies:
            try:
                seq, frame = unpack_envelope(payload)
            except TransportError:
                self.report.corrupt_frames += 1
                continue
            if seq in self._seen:
                self.report.duplicates_discarded += 1
                continue
            try:
                batch = deserialize_batch(frame, self.schema)
            except WireFormatError:
                self.report.corrupt_frames += 1
                continue
            # an intact frame with an unexpected sequence number cannot
            # occur under stop-and-wait; guard anyway so a future pipelined
            # sender fails loudly instead of reordering silently
            if seq != expected_seq:
                raise TransportError(
                    f"frame for seq {seq} while awaiting {expected_seq}"
                )
            self._seen.add(seq)
            accepted = batch
        return accepted
