"""Multi-hop transmission paths (Sec. IV-A multi-layer architecture).

The paper's client/server pair is "a simplified model"; real deployments
chain resource-constrained sources through edge collectors to the cloud.
:class:`MultiHopChannel` models a store-and-forward path: a batch crosses
every hop in sequence, paying each hop's bandwidth and latency.  Narrow
first hops (sensor uplinks) amplify the value of compressing at the
source, which is why the paper insists the codecs be lightweight enough
for "resource-constraint devices like data sources".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ChannelError
from .channel import Channel


@dataclass(frozen=True)
class Hop:
    """One link of a multi-layer path."""

    name: str
    bandwidth_mbps: Optional[float]  # None = local handoff (no wire)
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_mbps is not None and (
            not math.isfinite(self.bandwidth_mbps) or self.bandwidth_mbps <= 0
        ):
            raise ChannelError(
                f"hop {self.name!r}: bandwidth must be positive and finite"
            )
        if not math.isfinite(self.latency_s) or self.latency_s < 0:
            raise ChannelError(
                f"hop {self.name!r}: latency must be finite and non-negative"
            )


class MultiHopChannel(Channel):
    """Store-and-forward path of sequential hops.

    Exposes the same interface as :class:`Channel` (the pipeline and the
    cost model are oblivious), plus per-hop time accounting.
    """

    def __init__(self, hops: Sequence[Hop]):
        if not hops:
            raise ChannelError("a multi-hop path needs at least one hop")
        self.hops: List[Hop] = list(hops)
        # the Channel interface fields: latency is paid once per hop;
        # bandwidth_mbps reports the bottleneck link for introspection
        bandwidths = [h.bandwidth_mbps for h in self.hops if h.bandwidth_mbps]
        super().__init__(
            bandwidth_mbps=min(bandwidths) if bandwidths else None,
            latency_s=sum(h.latency_s for h in self.hops),
        )
        self.hop_seconds = [0.0] * len(self.hops)

    @classmethod
    def sensor_edge_cloud(
        cls,
        uplink_mbps: float = 20.0,
        backbone_mbps: float = 1000.0,
        uplink_latency_s: float = 0.002,
        backbone_latency_s: float = 0.01,
    ) -> "MultiHopChannel":
        """The canonical IoT deployment: sensor -> edge -> cloud."""
        return cls(
            [
                Hop("sensor-uplink", uplink_mbps, uplink_latency_s),
                Hop("edge-backbone", backbone_mbps, backbone_latency_s),
            ]
        )

    def hop_transmit_seconds(self, hop: Hop, nbytes: int) -> float:
        if hop.bandwidth_mbps is None:
            return hop.latency_s
        return nbytes / (hop.bandwidth_mbps * 1e6 / 8) + hop.latency_s

    def transmit_seconds(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ChannelError("cannot transmit a negative number of bytes")
        return sum(self.hop_transmit_seconds(h, nbytes) for h in self.hops)

    def transmit(self, nbytes: int) -> float:
        total = 0.0
        for i, hop in enumerate(self.hops):
            seconds = self.hop_transmit_seconds(hop, nbytes)
            self.hop_seconds[i] += seconds
            total += seconds
        self.bytes_sent += int(nbytes)
        self.batches_sent += 1
        self.seconds_spent += total
        return total

    def reset(self) -> None:
        super().reset()
        self.hop_seconds = [0.0] * len(self.hops)

    def breakdown(self) -> List[Tuple[str, float]]:
        """Accumulated seconds per hop (name, seconds)."""
        return [(h.name, s) for h, s in zip(self.hops, self.hop_seconds)]
