"""Simulated client-server network channel.

DESIGN.md §3: the paper's testbed is two cloud hosts with a 0-1 Gbps link;
we replace it with a deterministic byte-accurate virtual-time model.  The
paper's gains come from reducing bytes on the wire (Fig. 3: transmission is
≥70 % of total time at 500 Mbps), and that mechanism is preserved exactly:

* Eq. 5 (saturated link):   t = bytes / bandwidth
* Eq. 4 (propagation):      t += latency per batch

``bandwidth_mbps=None`` models the paper's single-node mode (no network).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ChannelError

_BITS_PER_BYTE = 8


@dataclass
class Channel:
    """Virtual-time network link between the client and the server."""

    bandwidth_mbps: Optional[float] = 500.0
    latency_s: float = 0.0
    bytes_sent: int = field(default=0, init=False)
    batches_sent: int = field(default=0, init=False)
    seconds_spent: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.bandwidth_mbps is not None and (
            not math.isfinite(self.bandwidth_mbps) or self.bandwidth_mbps <= 0
        ):
            raise ChannelError(
                "bandwidth must be positive and finite (or None for single-node)"
            )
        if not math.isfinite(self.latency_s) or self.latency_s < 0:
            raise ChannelError("latency must be finite and non-negative")

    @classmethod
    def single_node(cls) -> "Channel":
        """No network: transmission is free (paper's single-node mode)."""
        return cls(bandwidth_mbps=None, latency_s=0.0)

    @property
    def is_single_node(self) -> bool:
        return self.bandwidth_mbps is None

    def transmit_seconds(self, nbytes: int) -> float:
        """Virtual seconds to ship ``nbytes`` (pure function of the config)."""
        if nbytes < 0:
            raise ChannelError("cannot transmit a negative number of bytes")
        if self.is_single_node:
            return 0.0
        bandwidth_bytes_per_s = self.bandwidth_mbps * 1e6 / _BITS_PER_BYTE
        return nbytes / bandwidth_bytes_per_s + self.latency_s

    def transmit(self, nbytes: int) -> float:
        """Transmit a batch payload, recording totals; returns seconds."""
        seconds = self.transmit_seconds(nbytes)
        self.bytes_sent += int(nbytes)
        self.batches_sent += 1
        self.seconds_spent += seconds
        return seconds

    def reset(self) -> None:
        self.bytes_sent = 0
        self.batches_sent = 0
        self.seconds_spent = 0.0


@dataclass
class QueuedChannel(Channel):
    """A channel with a serial link and queuing delay.

    When batches become ready faster than the link drains them, they queue
    (the paper's Fig. 10 observation that on a limited link "the data have
    to be queued before transmission, and thus large batch can result in
    system pauses").  The virtual clock advances per send:

        start  = max(ready_time, link_free_at)
        depart = start + nbytes / bandwidth + latency

    and the reported transmission time includes the queueing delay
    ``start - ready_time``.
    """

    link_free_at: float = field(default=0.0, init=False)
    queue_seconds: float = field(default=0.0, init=False)

    def send(self, nbytes: int, ready_time: float) -> Tuple[float, float]:
        """Ship a batch that became ready at ``ready_time``.

        Returns ``(transmit_seconds_including_queue, depart_time)``.
        """
        if ready_time < 0:
            raise ChannelError("ready_time cannot be negative")
        start = max(ready_time, self.link_free_at)
        queue_delay = start - ready_time
        wire = self.transmit_seconds(nbytes)
        depart = start + wire
        self.link_free_at = depart
        self.bytes_sent += int(nbytes)
        self.batches_sent += 1
        self.seconds_spent += queue_delay + wire
        self.queue_seconds += queue_delay
        return queue_delay + wire, depart

    def reset(self) -> None:
        super().reset()
        self.link_free_at = 0.0
        self.queue_seconds = 0.0
