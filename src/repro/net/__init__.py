"""Simulated network between compression clients and the query server."""

from .channel import Channel, QueuedChannel
from .faults import (
    DeadLetter,
    FaultInjector,
    FaultProfile,
    FaultReport,
    FaultyChannel,
)
from .topology import Hop, MultiHopChannel
from .transport import ReliabilityConfig, ReliableTransport, TransportOutcome

__all__ = [
    "Channel",
    "QueuedChannel",
    "Hop",
    "MultiHopChannel",
    "DeadLetter",
    "FaultInjector",
    "FaultProfile",
    "FaultReport",
    "FaultyChannel",
    "ReliabilityConfig",
    "ReliableTransport",
    "TransportOutcome",
]
