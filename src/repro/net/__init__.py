"""Simulated network between compression clients and the query server."""

from .channel import Channel, QueuedChannel
from .topology import Hop, MultiHopChannel

__all__ = ["Channel", "QueuedChannel", "Hop", "MultiHopChannel"]
