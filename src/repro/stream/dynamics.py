"""Dynamic workloads: streams whose data properties shift over time.

Sec. III-B: value ranges, repetition degree and distinct counts of a stream
change at unpredictable times, so the best compression method changes too.
:class:`DynamicWorkload` cycles through *phases* — each a column-generator
with different statistical character — which is how the Fig. 7 experiment
constructs a stream where no single static codec stays optimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import SchemaError
from .batch import Batch
from .schema import Schema

#: A phase generates raw columns for one batch: (rng, n) -> {name: values}.
PhaseFn = Callable[[np.random.Generator, int], Dict[str, np.ndarray]]


@dataclass(frozen=True)
class Phase:
    """One statistical regime of a dynamic stream."""

    name: str
    generate: PhaseFn


class DynamicWorkload:
    """Cycles phases every ``batches_per_phase`` batches.

    Deterministic given the seed; the phase schedule is round-robin, which
    guarantees the adaptive selector keeps facing regime changes.
    """

    def __init__(
        self,
        schema: Schema,
        phases: Sequence[Phase],
        batch_size: int,
        batches_per_phase: int = 10,
        seed: int = 7,
        limit: Optional[int] = None,
    ):
        if not phases:
            raise SchemaError("a dynamic workload needs at least one phase")
        if batch_size <= 0 or batches_per_phase <= 0:
            raise SchemaError("batch_size and batches_per_phase must be positive")
        self.schema = schema
        self.phases: List[Phase] = list(phases)
        self.batch_size = batch_size
        self.batches_per_phase = batches_per_phase
        self.seed = seed
        self.limit = limit

    def phase_for_batch(self, index: int) -> Phase:
        return self.phases[(index // self.batches_per_phase) % len(self.phases)]

    def __iter__(self) -> Iterator[Batch]:
        index = 0
        while self.limit is None or index < self.limit:
            rng = np.random.default_rng(self.seed + index)
            phase = self.phase_for_batch(index)
            columns = phase.generate(rng, self.batch_size)
            yield Batch.from_values(self.schema, columns)
            index += 1
