"""Stream substrate: schemas, columnar batches, windows, sources."""

from .batch import Batch, CompressedBatch
from .csv_source import CsvSource, write_csv
from .dynamics import DynamicWorkload, Phase
from .quantize import dequantize, detect_decimals, quantize
from .schema import KIND_FLOAT, KIND_INT, Field, Schema
from .source import ArraySource, GeneratorSource
from .window import (
    MODE_COUNT,
    MODE_PARTITION,
    MODE_TIME,
    MODE_UNBOUNDED,
    PartitionWindowState,
    SlidingWindowBuffer,
    TimeWindowScheduler,
    WindowLayout,
    WindowScheduler,
    WindowSpec,
)

__all__ = [
    "Batch",
    "CompressedBatch",
    "CsvSource",
    "write_csv",
    "DynamicWorkload",
    "Phase",
    "dequantize",
    "detect_decimals",
    "quantize",
    "KIND_FLOAT",
    "KIND_INT",
    "Field",
    "Schema",
    "ArraySource",
    "GeneratorSource",
    "MODE_COUNT",
    "MODE_PARTITION",
    "MODE_TIME",
    "MODE_UNBOUNDED",
    "PartitionWindowState",
    "SlidingWindowBuffer",
    "TimeWindowScheduler",
    "WindowLayout",
    "WindowScheduler",
    "WindowSpec",
]
