"""Stream schemas: typed tuple layouts for the engine.

A stream is an unbounded sequence of tuples; a tuple is a record of typed
fields (Sec. II-A).  Internally every column is an ``int64`` array — float
fields are losslessly quantized to fixed-point integers on ingest (see
:mod:`.quantize`) so the integer codecs of Table I apply, the approach
TerseCades takes for sensor floats.  ``Field.size`` is the field's byte
width *on the wire before compression* and drives ``Size_T`` / ``Size_C``
in the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Tuple

from ..errors import SchemaError

KIND_INT = "int"
KIND_FLOAT = "float"
_VALID_KINDS = (KIND_INT, KIND_FLOAT)
_VALID_SIZES = (1, 2, 4, 8)


@dataclass(frozen=True)
class Field:
    """One attribute of a stream tuple."""

    name: str
    kind: str = KIND_INT
    size: int = 8  # uncompressed bytes (the paper's Size_C for this column)
    decimals: int = 0  # fixed-point decimal places for float fields

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"field name {self.name!r} is not an identifier")
        if self.kind not in _VALID_KINDS:
            raise SchemaError(f"field kind must be one of {_VALID_KINDS}")
        if self.size not in _VALID_SIZES:
            raise SchemaError(f"field size must be one of {_VALID_SIZES}")
        if self.kind == KIND_INT and self.decimals:
            raise SchemaError("integer fields cannot declare decimals")
        if self.decimals < 0 or self.decimals > 9:
            raise SchemaError("decimals must be in [0, 9]")

    @property
    def scale(self) -> int:
        """Fixed-point scale: stored_int = round(value * scale)."""
        return 10 ** self.decimals


class Schema:
    """An ordered, named collection of fields."""

    def __init__(self, fields: Iterable[Field]):
        self.fields: Tuple[Field, ...] = tuple(fields)
        if not self.fields:
            raise SchemaError("a schema needs at least one field")
        self._by_name: Dict[str, Field] = {}
        for f in self.fields:
            if f.name in self._by_name:
                raise SchemaError(f"duplicate field name {f.name!r}")
            self._by_name[f.name] = f

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    @property
    def tuple_bytes(self) -> int:
        """Uncompressed bytes per tuple (the cost model's Size_T)."""
        return sum(f.size for f in self.fields)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            known = ", ".join(self.names)
            raise SchemaError(f"unknown field {name!r}; schema has: {known}") from None

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.fields == other.fields

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{f.name}:{f.kind}{f.size * 8}" + (f".{f.decimals}" if f.decimals else "")
            for f in self.fields
        )
        return f"Schema({inner})"
