"""Window semantics: count-based sliding windows and partition windows.

The dialect of Table III uses three window forms:

* ``[range N slide M]`` — count-based sliding window of N tuples advancing
  by M tuples;
* ``[range unbounded]`` — per-tuple pass-through (used by Q3's derived
  stream);
* ``[partition by col rows K]`` — the most recent K tuples per partition
  key (Q3's "latest position per vehicle").

Sliding windows may span batches; :class:`SlidingWindowBuffer` implements
the paper's *batch buffer* (Sec. VI): it retains the tail of the previous
batch so cross-batch windows are computed without re-transmission.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import PlanningError
from .batch import Batch

MODE_COUNT = "count"
MODE_TIME = "time"
MODE_UNBOUNDED = "unbounded"
MODE_PARTITION = "partition"


@dataclass(frozen=True)
class WindowSpec:
    """Parsed window clause.

    ``count`` windows measure tuples; ``time`` windows measure units of a
    monotone timestamp column (``time_column``), producing ragged windows
    that close when the stream's time passes their end.
    """

    mode: str
    size: int = 0
    slide: int = 1
    partition_by: str = ""
    rows: int = 0
    time_column: str = ""

    def __post_init__(self) -> None:
        if self.mode not in (MODE_COUNT, MODE_TIME, MODE_UNBOUNDED, MODE_PARTITION):
            raise PlanningError(f"unknown window mode {self.mode!r}")
        if self.mode in (MODE_COUNT, MODE_TIME):
            if self.size <= 0:
                raise PlanningError(f"{self.mode} window needs a positive range")
            if self.slide <= 0:
                raise PlanningError(f"{self.mode} window needs a positive slide")
        if self.mode == MODE_TIME and not self.time_column:
            raise PlanningError("time window needs a timestamp column")
        if self.mode == MODE_PARTITION:
            if not self.partition_by:
                raise PlanningError("partition window needs a key column")
            if self.rows <= 0:
                raise PlanningError("partition window needs positive rows")

    @classmethod
    def count(cls, size: int, slide: int = 1) -> "WindowSpec":
        return cls(mode=MODE_COUNT, size=size, slide=slide)

    @classmethod
    def time(
        cls, size: int, slide: int, time_column: str = "timestamp"
    ) -> "WindowSpec":
        return cls(mode=MODE_TIME, size=size, slide=slide, time_column=time_column)

    @classmethod
    def unbounded(cls) -> "WindowSpec":
        return cls(mode=MODE_UNBOUNDED)

    @classmethod
    def partition(cls, key: str, rows: int) -> "WindowSpec":
        return cls(mode=MODE_PARTITION, partition_by=key, rows=rows)


class SlidingWindowBuffer:
    """Cross-batch count-window bookkeeping (the paper's batch buffer).

    Feed batches in arrival order; each call returns the merged working
    batch (buffered tail + new tuples) and the list of complete window
    extents ``(start, end)`` as offsets into that merged batch.  Incomplete
    trailing windows stay buffered for the next feed.
    """

    def __init__(self, spec: WindowSpec):
        if spec.mode != MODE_COUNT:
            raise PlanningError("SlidingWindowBuffer requires a count window")
        self.spec = spec
        self._pending: Optional[Batch] = None
        self._skip = 0  # tuples to drop before the next window start

    def feed(self, batch: Batch) -> Tuple[Batch, List[Tuple[int, int]]]:
        merged = Batch.concat([self._pending, batch]) if self._pending else batch
        size, slide = self.spec.size, self.spec.slide
        start = self._skip
        windows: List[Tuple[int, int]] = []
        while start + size <= merged.n:
            windows.append((start, start + size))
            start += slide
        if start >= merged.n:
            self._pending = None
            self._skip = start - merged.n
        else:
            self._pending = merged.slice(start, merged.n)
            self._skip = 0
        return merged, windows

    @property
    def buffered(self) -> int:
        """Tuples currently held for cross-batch windows."""
        return self._pending.n if self._pending is not None else 0


@dataclass(frozen=True)
class WindowLayout:
    """Window extents for one fed batch, in merged coordinates.

    ``carry`` tuples from the previous batch precede the new batch in the
    merged coordinate system (merged length = carry + n).  ``retain_start``
    is where the tail that must be buffered for the next batch begins; when
    it equals the merged length nothing is retained.
    """

    carry: int
    windows: Tuple[Tuple[int, int], ...]
    retain_start: int

    @property
    def crosses_batches(self) -> bool:
        return self.carry > 0


class WindowScheduler:
    """Counts-only cross-batch window bookkeeping.

    The executor pairs this with its own (decoded) tail buffers: windows of
    batches that need no carried tuples run *directly on compressed codes*;
    batches with cross-boundary windows fall back to buffered values, since
    code spaces of different batches (dictionary, base...) are not
    comparable.  The benchmark configurations size batches as whole numbers
    of windows, so the direct path dominates, matching the paper's setup of
    "each batch contains 100 windows".
    """

    def __init__(self, spec: WindowSpec):
        if spec.mode != MODE_COUNT:
            raise PlanningError("WindowScheduler requires a count window")
        self.spec = spec
        self._pending = 0
        self._skip = 0

    def feed(self, n: int) -> WindowLayout:
        if n < 0:
            raise PlanningError("cannot feed a negative number of tuples")
        carry = self._pending
        total = carry + n
        size, slide = self.spec.size, self.spec.slide
        start = self._skip
        windows: List[Tuple[int, int]] = []
        while start + size <= total:
            windows.append((start, start + size))
            start += slide
        if start >= total:
            self._pending = 0
            self._skip = start - total
            retain_start = total
        else:
            self._pending = total - start
            self._skip = 0
            retain_start = start
        return WindowLayout(
            carry=carry, windows=tuple(windows), retain_start=retain_start
        )

    @property
    def pending(self) -> int:
        return self._pending


class TimeWindowScheduler:
    """Cross-batch bookkeeping for time-based windows.

    Windows are aligned to the stream's first timestamp t0: window k spans
    ``[t0 + k*slide, t0 + k*slide + size)`` in timestamp units.  A window
    is emitted once the stream's time passes its end (in-order streams act
    as their own watermark); trailing windows still open at the end of a
    feed stay pending.  Feeding returns extents as *index* ranges into the
    merged (carried tail + new) coordinate system, so the executor's value
    kernels stay identical to the count-window path, just with ragged
    window sizes.

    Timestamps must be non-decreasing; out-of-order input raises
    :class:`~repro.errors.PlanningError` (this engine models in-order
    streams, as the paper's datasets are).
    """

    def __init__(self, spec: WindowSpec):
        if spec.mode != MODE_TIME:
            raise PlanningError("TimeWindowScheduler requires a time window")
        self.spec = spec
        self._t0: Optional[int] = None
        self._next_window = 0     # index k of the next window to emit
        self._pending = 0         # carried tuples (tail of previous feed)
        self._last_ts: Optional[int] = None

    def _window_bounds(self, k: int) -> Tuple[int, int]:
        start = self._t0 + k * self.spec.slide
        return start, start + self.spec.size

    def feed(self, timestamps: np.ndarray) -> WindowLayout:
        ts = np.asarray(timestamps, dtype=np.int64)
        carry = self._pending
        n_new = ts.size - carry
        if n_new < 0:
            raise PlanningError("fed fewer timestamps than the carried tail")
        if ts.size and (np.diff(ts) < 0).any():
            raise PlanningError("time windows require non-decreasing timestamps")
        if self._last_ts is not None and ts.size > carry and ts[carry] < self._last_ts:
            raise PlanningError("time windows require non-decreasing timestamps")
        if ts.size:
            if self._t0 is None:
                self._t0 = int(ts[0])
            self._last_ts = int(ts[-1])
        windows: List[Tuple[int, int]] = []
        if ts.size == 0 or self._t0 is None:
            return WindowLayout(carry=carry, windows=(), retain_start=ts.size)
        stream_time = int(ts[-1])
        k = self._next_window
        while True:
            w_start, w_end = self._window_bounds(k)
            if stream_time < w_end:
                break  # still open: needs future tuples to close
            lo = int(np.searchsorted(ts, w_start, side="left"))
            hi = int(np.searchsorted(ts, w_end, side="left"))
            if hi > lo:
                windows.append((lo, hi))
            # empty windows (no tuples in span) emit nothing, like the
            # count path where windows always have tuples by construction
            k += 1
        self._next_window = k
        next_start, _ = self._window_bounds(k)
        retain_start = int(np.searchsorted(ts, next_start, side="left"))
        self._pending = ts.size - retain_start
        return WindowLayout(
            carry=carry, windows=tuple(windows), retain_start=retain_start
        )

    @property
    def pending(self) -> int:
        return self._pending


class PartitionWindowState:
    """Most-recent-K-rows-per-key state for ``[partition by c rows K]``."""

    def __init__(self, spec: WindowSpec):
        if spec.mode != MODE_PARTITION:
            raise PlanningError("PartitionWindowState requires a partition window")
        self.spec = spec
        # key -> per-column arrays of the last `rows` tuples (oldest first)
        self._state: Dict[int, Dict[str, np.ndarray]] = {}

    def update(self, batch: Batch) -> None:
        """Absorb a batch, retaining the latest ``rows`` tuples per key."""
        keys = batch.column(self.spec.partition_by)
        if keys.size == 0:
            return
        rows = self.spec.rows
        # Process per distinct key; take the last `rows` occurrences.
        uniques, inverse = np.unique(keys, return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        sorted_inverse = inverse[order]
        boundaries = np.nonzero(sorted_inverse[1:] != sorted_inverse[:-1])[0] + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [keys.size]])
        for ui, (s, e) in enumerate(zip(starts, ends)):
            idx = order[s:e]  # positions of this key, in arrival order
            take = idx[-rows:]
            key = int(uniques[ui])
            fresh = {
                name: batch.column(name)[take] for name in batch.schema.names
            }
            prior = self._state.get(key)
            if prior is not None and take.size < rows:
                fresh = {
                    name: np.concatenate([prior[name], fresh[name]])[-rows:]
                    for name in fresh
                }
            self._state[key] = fresh

    def latest_aligned(
        self, keys: np.ndarray, names: Sequence[str]
    ) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        """Latest row per requested key, aligned with ``keys``.

        Unlike :meth:`lookup`, missing keys are *not* skipped: the result
        has exactly ``len(keys)`` rows per column (zeros where the key has
        no state) plus a boolean ``found`` mask, which is what the outer
        join needs to fill misses.  Requires a ``rows 1`` window — deeper
        retention has no single aligned row per key.
        """
        if self.spec.rows != 1:
            raise PlanningError(
                "latest_aligned requires a [partition by <key> rows 1] window"
            )
        keys = np.asarray(keys, dtype=np.int64)
        found = np.zeros(keys.size, dtype=bool)
        columns = {
            name: np.zeros(keys.size, dtype=np.int64) for name in names
        }
        for i, key in enumerate(keys):
            rows = self._state.get(int(key))
            if rows is None:
                continue
            found[i] = True
            for name in names:
                columns[name][i] = rows[name][-1]
        return columns, found

    def lookup(self, keys: np.ndarray) -> Dict[str, np.ndarray]:
        """Latest rows for the given keys, flattened in key order.

        Keys with no state are skipped (no tuple has arrived for them yet).
        """
        if not self._state:
            return {}
        collected: Dict[str, List[np.ndarray]] = {}
        for key in np.asarray(keys, dtype=np.int64):
            rows = self._state.get(int(key))
            if rows is None:
                continue
            for name, arr in rows.items():
                collected.setdefault(name, []).append(arr)
        return {
            name: np.concatenate(parts) for name, parts in collected.items()
        }

    def __len__(self) -> int:
        return len(self._state)
