"""CSV file source: replay recorded streams through the engine.

Adoption surface for users with their own data: point a schema at a CSV
file (header row naming the columns) and stream it in batches.  Floats
are quantized per the schema's declared decimals; a value that does not
fit raises :class:`~repro.errors.QuantizationError` rather than silently
losing precision.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterator, List, Union

import numpy as np

from ..errors import SchemaError
from .batch import Batch
from .schema import KIND_FLOAT, Schema


class CsvSource:
    """Streams a CSV file as batches of ``batch_size`` tuples.

    The header must contain every schema field (extra columns are
    ignored); the final partial batch is emitted when ``keep_tail`` is
    true.  The file is re-read on every iteration, so a source can drive
    several engine runs.
    """

    def __init__(
        self,
        path: Union[str, Path],
        schema: Schema,
        batch_size: int,
        keep_tail: bool = True,
        delimiter: str = ",",
    ):
        if batch_size <= 0:
            raise SchemaError("batch_size must be positive")
        self.path = Path(path)
        self.schema = schema
        self.batch_size = batch_size
        self.keep_tail = keep_tail
        self.delimiter = delimiter

    def __iter__(self) -> Iterator[Batch]:
        with open(self.path, newline="") as handle:
            reader = csv.reader(handle, delimiter=self.delimiter)
            try:
                header = next(reader)
            except StopIteration:
                raise SchemaError(f"{self.path}: empty CSV file") from None
            indices = self._column_indices(header)
            buffer: List[List[str]] = []
            for row in reader:
                if not row:
                    continue
                buffer.append(row)
                if len(buffer) == self.batch_size:
                    yield self._to_batch(buffer, indices)
                    buffer = []
            if buffer and self.keep_tail:
                yield self._to_batch(buffer, indices)

    def _column_indices(self, header: List[str]) -> Dict[str, int]:
        stripped = [h.strip() for h in header]
        indices = {}
        for f in self.schema:
            if f.name not in stripped:
                raise SchemaError(
                    f"{self.path}: CSV header {stripped} lacks column {f.name!r}"
                )
            indices[f.name] = stripped.index(f.name)
        return indices

    def _to_batch(self, rows: List[List[str]], indices: Dict[str, int]) -> Batch:
        columns: Dict[str, np.ndarray] = {}
        for f in self.schema:
            idx = indices[f.name]
            try:
                raw = [row[idx] for row in rows]
            except IndexError:
                raise SchemaError(
                    f"{self.path}: a row is shorter than the header"
                ) from None
            if f.kind == KIND_FLOAT:
                columns[f.name] = np.asarray([float(x) for x in raw])
            else:
                columns[f.name] = np.asarray([int(x) for x in raw])
        return Batch.from_values(self.schema, columns)


def write_csv(
    path: Union[str, Path], schema: Schema, batches, delimiter: str = ","
) -> int:
    """Write batches to a CSV file (inverse of :class:`CsvSource`).

    Float columns are dequantized to their declared precision.  Returns
    the number of rows written.
    """
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(schema.names)
        for batch in batches:
            if batch.schema != schema:
                raise SchemaError("batch schema does not match the CSV schema")
            converted = []
            for f in schema:
                stored = batch.column(f.name)
                if f.kind == KIND_FLOAT:
                    converted.append(
                        [f"{v:.{f.decimals}f}" for v in stored / f.scale]
                    )
                else:
                    converted.append([str(int(v)) for v in stored])
            for i in range(batch.n):
                writer.writerow([col[i] for col in converted])
                rows += 1
    return rows
