"""Stream sources: adapters that feed batches into the engine.

A source is anything iterable over :class:`~repro.stream.batch.Batch`
objects sharing one schema.  :class:`ArraySource` replays pre-generated
columns (how the benchmarks drive the engine deterministically);
:class:`GeneratorSource` wraps a per-batch generator callback (how the
dataset generators and the dynamic workload produce unbounded streams).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Mapping, Optional

import numpy as np

from ..errors import SchemaError
from .batch import Batch
from .schema import Schema


class ArraySource:
    """Replays fixed per-column arrays as batches of ``batch_size`` tuples.

    The final partial batch is dropped by default (streaming engines work
    at batch granularity); pass ``keep_tail=True`` to emit it.
    """

    def __init__(
        self,
        schema: Schema,
        columns: Mapping[str, np.ndarray],
        batch_size: int,
        keep_tail: bool = False,
    ):
        if batch_size <= 0:
            raise SchemaError("batch_size must be positive")
        self.schema = schema
        self.batch_size = batch_size
        self.keep_tail = keep_tail
        self._full = Batch.from_values(schema, columns)

    @property
    def total_tuples(self) -> int:
        return self._full.n

    def __iter__(self) -> Iterator[Batch]:
        n = self._full.n
        stop = n if self.keep_tail else (n // self.batch_size) * self.batch_size
        for start in range(0, stop, self.batch_size):
            end = min(start + self.batch_size, stop)
            if end > start:
                yield self._full.slice(start, end)


class GeneratorSource:
    """Unbounded source: calls ``make_batch(batch_index)`` per batch.

    ``limit`` bounds iteration for experiments; None means unbounded.
    """

    def __init__(
        self,
        schema: Schema,
        make_batch: Callable[[int], Dict[str, np.ndarray]],
        limit: Optional[int] = None,
    ):
        self.schema = schema
        self._make_batch = make_batch
        self.limit = limit

    def __iter__(self) -> Iterator[Batch]:
        index = 0
        while self.limit is None or index < self.limit:
            columns = self._make_batch(index)
            yield Batch.from_values(self.schema, columns)
            index += 1
