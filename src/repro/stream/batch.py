"""Columnar batches: the engine's processing granularity (Sec. IV-A).

A :class:`Batch` holds ``Size_B`` tuples column-wise as int64 arrays (float
fields already fixed-point quantized per the schema).  A
:class:`CompressedBatch` is its per-column compressed counterpart — the
unit the client ships through the network channel to the server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

from ..compression.base import CompressedColumn
from ..errors import SchemaError
from .quantize import dequantize, quantize
from .schema import KIND_FLOAT, Schema


class Batch:
    """``Size_B`` tuples of one stream, stored column-wise."""

    def __init__(self, schema: Schema, columns: Mapping[str, np.ndarray]):
        self.schema = schema
        self.columns: Dict[str, np.ndarray] = {}
        lengths = set()
        for f in schema:
            if f.name not in columns:
                raise SchemaError(f"batch is missing column {f.name!r}")
            arr = np.ascontiguousarray(columns[f.name], dtype=np.int64)
            if arr.ndim != 1:
                raise SchemaError(f"column {f.name!r} must be 1-D")
            self.columns[f.name] = arr
            lengths.add(arr.size)
        extra = set(columns) - set(schema.names)
        if extra:
            raise SchemaError(f"batch has columns not in schema: {sorted(extra)}")
        if len(lengths) != 1:
            raise SchemaError(f"ragged batch: column lengths {sorted(lengths)}")
        self.n = lengths.pop()

    # ----- construction ----------------------------------------------------

    @classmethod
    def from_values(cls, schema: Schema, columns: Mapping[str, Sequence]) -> "Batch":
        """Build a batch from raw (possibly float) per-column values."""
        converted: Dict[str, np.ndarray] = {}
        for f in schema:
            if f.name not in columns:
                raise SchemaError(f"missing column {f.name!r}")
            raw = np.asarray(columns[f.name])
            if f.kind == KIND_FLOAT:
                converted[f.name] = quantize(raw.astype(np.float64), f.decimals)
            else:
                converted[f.name] = np.ascontiguousarray(raw, dtype=np.int64)
        return cls(schema, converted)

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence]) -> "Batch":
        """Build a batch from an iterable of tuples in schema field order."""
        rows = list(rows)
        if not rows:
            raise SchemaError("cannot build a batch from zero rows")
        columns = {
            f.name: np.asarray([row[i] for row in rows])
            for i, f in enumerate(schema)
        }
        return cls.from_values(schema, columns)

    @classmethod
    def concat(cls, batches: Sequence["Batch"]) -> "Batch":
        """Concatenate batches of the same schema (used by window buffers)."""
        if not batches:
            raise SchemaError("cannot concatenate zero batches")
        schema = batches[0].schema
        for b in batches[1:]:
            if b.schema != schema:
                raise SchemaError("cannot concatenate batches of different schemas")
        columns = {
            name: np.concatenate([b.columns[name] for b in batches])
            for name in schema.names
        }
        return cls(schema, columns)

    # ----- access ------------------------------------------------------

    def __len__(self) -> int:
        return self.n

    def column(self, name: str) -> np.ndarray:
        if name not in self.columns:
            raise SchemaError(f"unknown column {name!r}")
        return self.columns[name]

    def slice(self, start: int, stop: int) -> "Batch":
        """A view-backed sub-batch of rows [start, stop)."""
        return Batch(
            self.schema,
            {name: arr[start:stop] for name, arr in self.columns.items()},
        )

    def take(self, indices: np.ndarray) -> "Batch":
        """Row subset by index array."""
        return Batch(
            self.schema,
            {name: arr[indices] for name, arr in self.columns.items()},
        )

    def output_value(self, name: str, stored: np.ndarray) -> np.ndarray:
        """Convert stored int64 values of a column to user-facing values."""
        f = self.schema[name]
        if f.kind == KIND_FLOAT:
            return dequantize(stored, f.decimals)
        return np.asarray(stored, dtype=np.int64)

    @property
    def uncompressed_nbytes(self) -> int:
        """Size_T * Size_B: wire bytes without compression."""
        return self.schema.tuple_bytes * self.n

    def __repr__(self) -> str:
        return f"Batch(n={self.n}, schema={self.schema!r})"


@dataclass
class CompressedBatch:
    """Per-column compressed payloads plus the codec decisions used."""

    schema: Schema
    n: int
    columns: Dict[str, CompressedColumn]
    #: codec name per column (redundant with columns, handy for reporting)
    choices: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = set(self.schema.names) - set(self.columns)
        if missing:
            raise SchemaError(f"compressed batch missing columns: {sorted(missing)}")
        for name, cc in self.columns.items():
            if cc.n != self.n:
                raise SchemaError(
                    f"column {name!r} has {cc.n} elements, batch has {self.n}"
                )
        if not self.choices:
            self.choices = {name: cc.codec for name, cc in self.columns.items()}

    @property
    def nbytes(self) -> int:
        """Total transmitted bytes for this batch."""
        return sum(cc.nbytes for cc in self.columns.values())

    @property
    def uncompressed_nbytes(self) -> int:
        return self.schema.tuple_bytes * self.n

    @property
    def ratio(self) -> float:
        """Whole-batch compression ratio r."""
        if self.nbytes == 0:
            return float("inf")
        return self.uncompressed_nbytes / self.nbytes
