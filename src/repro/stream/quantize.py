"""Lossless fixed-point quantization of float columns.

Integer lightweight codecs (Table I) need integer domains.  Sensor values
such as smart-plug loads carry a bounded number of decimal places, so
``stored = round(value * 10**decimals)`` is lossless; we verify round-trip
on ingest and raise :class:`~repro.errors.QuantizationError` otherwise
rather than silently corrupting query results (only *lossless* compression
is admissible, Sec. II-B).
"""

from __future__ import annotations

import numpy as np

from ..errors import QuantizationError

#: |value| bound such that value * 10^9 still fits comfortably in int64.
_MAX_MAGNITUDE = float(1 << 52)


def quantize(values: np.ndarray, decimals: int) -> np.ndarray:
    """Quantize floats to int64 fixed point; verifies losslessness."""
    values = np.asarray(values, dtype=np.float64)
    if decimals < 0 or decimals > 9:
        raise QuantizationError("decimals must be in [0, 9]")
    if values.size and not np.isfinite(values).all():
        raise QuantizationError("cannot quantize NaN or infinite values")
    if values.size and np.abs(values).max() >= _MAX_MAGNITUDE:
        raise QuantizationError("value magnitude too large for fixed point")
    scale = 10 ** decimals
    scaled = values * scale
    out = np.round(scaled).astype(np.int64)
    # Lossless means the scaled value already is (float noise aside) an
    # integer; a relative tolerance admits representation error only.
    error = np.abs(scaled - out)
    tolerance = np.maximum(np.abs(scaled), 1.0) * 1e-9
    if (error > tolerance).any():
        bad = int(np.argmax(error > tolerance))
        raise QuantizationError(
            f"value {values[bad]!r} is not representable with {decimals} decimals"
        )
    return out


def dequantize(values: np.ndarray, decimals: int) -> np.ndarray:
    """Map fixed-point int64 back to float64."""
    if decimals == 0:
        return np.asarray(values, dtype=np.float64)
    return np.asarray(values, dtype=np.float64) / (10 ** decimals)


def detect_decimals(values: np.ndarray, max_decimals: int = 9) -> int:
    """Smallest number of decimals that losslessly represents ``values``."""
    values = np.asarray(values, dtype=np.float64)
    for decimals in range(max_decimals + 1):
        scale = 10 ** decimals
        scaled = np.round(values * scale)
        if np.allclose(scaled / scale, values, rtol=0.0, atol=1e-12):
            return decimals
    raise QuantizationError(
        f"values need more than {max_decimals} decimal places to be lossless"
    )
