"""Base-Delta encoding (BD) — lazy, β = 0.

Stores every element as its delta from the batch minimum (Eq. 14).  This is
the single compression method TerseCades [27] relies on; running the engine
with a fixed BD codec reproduces that comparator.  Deltas are non-negative,
so the payload is an unsigned fixed-width array, and
``value = code + base`` makes BD fully affine.
"""

from __future__ import annotations

import numpy as np

from ..stats import ColumnStats
from ..types import bytes_for_unsigned
from .base import AffineCodec, CompressedColumn
from .kernels import bd_deltas, pack_ints, unpack_ints


class BaseDeltaCodec(AffineCodec):
    """Delta-from-base encoding (the paper's BD / TerseCades)."""

    name = "bd"
    is_lazy = True
    needs_decompression = False

    #: Transmitted metadata: the 8-byte base value.
    META_BYTES = 8

    def compress(self, values: np.ndarray) -> CompressedColumn:
        values = self._as_int64(values)
        base, deltas = bd_deltas(values)
        width = bytes_for_unsigned(int(deltas.max()))
        payload = pack_ints(deltas, width, signed=False)
        return CompressedColumn(
            codec=self.name,
            n=int(values.size),
            payload=payload,
            meta={"width": width, "offset": base},
            nbytes=payload.nbytes + self.META_BYTES,
            source_size_c=8,
        )

    def decompress(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        deltas = unpack_ints(column.payload, int(column.meta["width"]), column.n)
        return deltas + int(column.meta["offset"])

    def estimate_ratio(self, stats: ColumnStats) -> float:
        # Eq. 14: r = Size_C / BDDomain
        return stats.size_c / stats.bd_domain_bytes

    def direct_codes(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        return unpack_ints(column.payload, int(column.meta["width"]), column.n)
