"""Codec framework: the abstract codec, compressed columns, capabilities.

Design (DESIGN.md §2): a :class:`CompressedColumn` carries the codec
payload plus enough metadata for the server to either (a) run operators
*directly* on the compressed codes, or (b) decompress first when the codec
is one of the paper's "lightweight decompression-required" special cases
(β = 1: NSV, RLE, Bitmap) or the query needs a capability the codec lacks.

Capabilities
------------
``equality``
    codes are a bijection of values: group-by keys, ``==``/``!=``
    predicates and ``distinct`` run on codes.
``order``
    codes preserve ``<`` after :meth:`Codec.encode_literal` maps the query
    constant into code space: range predicates and min/max run on codes.
``affine``
    ``value = scale * code + offset``: sum/avg run on codes and are
    corrected once per window.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Dict, FrozenSet, Optional, Tuple

import numpy as np

from ..errors import CodecError, CodecNotApplicable
from ..stats import ColumnStats

CAP_EQUALITY = "equality"
CAP_ORDER = "order"
CAP_AFFINE = "affine"


@dataclass
class CompressedColumn:
    """A single compressed column of one batch.

    ``nbytes`` is the exact transmitted size (payload plus any metadata the
    server needs, e.g. the dictionary for DICT); the network channel charges
    this many bytes.
    """

    codec: str
    n: int
    payload: np.ndarray  # uint8 buffer (codec-specific layout)
    meta: Dict[str, Any] = field(default_factory=dict)
    nbytes: int = 0
    source_size_c: int = 8  # bytes per element before compression (Size_C)

    def __post_init__(self) -> None:
        if self.n < 0:
            raise CodecError("compressed column cannot have negative length")
        if self.nbytes <= 0:
            self.nbytes = int(self.payload.nbytes)

    @property
    def ratio(self) -> float:
        """Achieved compression ratio r = uncompressed bytes / nbytes."""
        if self.nbytes == 0:
            return float("inf")
        return (self.n * self.source_size_c) / self.nbytes


class PlaneView:
    """Per-distinct-value bitmap access into one compressed column.

    The equality-only direct path for plane codecs (Bitmap, PLWAH): an
    ``==``/``!=`` predicate against a literal is answered by unpacking the
    single plane of that value — the other Kindnum − 1 planes stay packed.
    ``selection`` carries a pending row subset so a WHERE can narrow the
    view without materializing per-row codes.
    """

    def __init__(
        self,
        dictionary: np.ndarray,
        n: int,
        mask_fn: Callable[[int], np.ndarray],
        selection: Optional[np.ndarray] = None,
    ) -> None:
        self.dictionary = dictionary
        self.n = int(n)
        self._mask_fn = mask_fn
        self._selection = selection

    def __len__(self) -> int:
        return self.n

    def mask_of_value(self, value: int) -> np.ndarray:
        """Boolean row mask of ``column == value`` (all-false if absent)."""
        idx = int(np.searchsorted(self.dictionary, value))
        if idx >= self.dictionary.size or int(self.dictionary[idx]) != int(value):
            return np.zeros(self.n, dtype=bool)
        mask = self._mask_fn(idx)
        if self._selection is not None:
            mask = mask[self._selection]
        return mask

    def take(self, indices: np.ndarray) -> "PlaneView":
        indices = np.asarray(indices)
        selection = (
            indices if self._selection is None else self._selection[indices]
        )
        return PlaneView(self.dictionary, indices.size, self._mask_fn, selection)

    def decode_all(self) -> np.ndarray:
        """Fallback materialization: original values for every row."""
        out = np.empty(self.n, dtype=np.int64)
        covered = np.zeros(self.n, dtype=bool)
        for idx in range(int(self.dictionary.size)):
            mask = self._mask_fn(idx)
            if self._selection is not None:
                mask = mask[self._selection]
            out[mask] = self.dictionary[idx]
            covered |= mask
        if not covered.all():
            raise CodecError("bitmap planes do not cover every position")
        return out


class Codec(ABC):
    """A lightweight compression algorithm (Table I of the paper)."""

    #: Registry name, e.g. ``"ns"``.
    name: ClassVar[str] = ""
    #: α in Eq. 3: lazy codecs wait for the whole batch before compressing.
    is_lazy: ClassVar[bool] = False
    #: β in Eq. 7: whether the server must decompress before querying.
    needs_decompression: ClassVar[bool] = False
    #: Direct-processing capabilities (empty when β = 1).
    capabilities: ClassVar[FrozenSet[str]] = frozenset()

    # ----- lifecycle ------------------------------------------------------

    def applicable(self, stats: ColumnStats) -> bool:
        """Whether this codec can encode a column with these statistics."""
        return True

    @abstractmethod
    def compress(self, values: np.ndarray) -> CompressedColumn:
        """Encode an int64 column; raises CodecNotApplicable when unusable."""

    @abstractmethod
    def decompress(self, column: CompressedColumn) -> np.ndarray:
        """Restore the original int64 column."""

    @abstractmethod
    def estimate_ratio(self, stats: ColumnStats) -> float:
        """Analytic compression ratio r of Sec. V (Eqs. 10-17)."""

    def cost_scale(self, stats: ColumnStats, calibration_kindnum: int) -> float:
        """Multiplier on the calibrated time model for this column.

        Most codecs cost O(n) regardless of content, but plane-based codecs
        (Bitmap, PLWAH) do O(n * Kindnum) work; they override this to scale
        the calibrated coefficients by the cardinality ratio between the
        target column and the calibration column.
        """
        return 1.0

    def estimate_transmitted_ratio(self, stats: ColumnStats) -> float:
        """Ratio including transmitted metadata (dictionary, base, ...).

        The paper's Eqs. 10-17 describe the payload only; the selector uses
        this refinement so that e.g. DICT on a near-unique column is not
        mistakenly chosen while its dictionary alone exceeds the raw data.
        Codecs without metadata inherit the plain estimate.
        """
        return self.estimate_ratio(stats)

    # ----- direct processing ---------------------------------------------

    def direct_codes(self, column: CompressedColumn) -> np.ndarray:
        """Materialize the compressed codes as an int64 array for kernels.

        Only meaningful for β = 0 codecs; the width-proportional memory
        traffic this models is what Eq. 8 divides by r'.
        """
        raise CodecError(f"codec {self.name!r} does not support direct processing")

    def affine_params(self, column: CompressedColumn) -> Tuple[int, int]:
        """(scale, offset) such that value = scale * code + offset."""
        raise CodecError(f"codec {self.name!r} is not affine")

    def encode_literal(self, column: CompressedColumn, value: int) -> Optional[int]:
        """Map a query constant into code space for direct predicates.

        Returns ``None`` when the constant cannot occur in the column under
        an equality predicate (e.g. a value absent from the dictionary);
        order-capable codecs must instead return a code that preserves the
        comparison result.
        """
        raise CodecError(f"codec {self.name!r} cannot encode literals")

    def lower_bound(self, column: CompressedColumn, value: int) -> int:
        """Smallest code whose decoded value is >= ``value``.

        Order-capable codecs use this to translate range predicates into
        code space: ``col >= v`` becomes ``code >= lower_bound(v)`` and, in
        the integer domain, ``col > v`` becomes ``code >= lower_bound(v+1)``.
        """
        raise CodecError(f"codec {self.name!r} does not preserve order")

    def decode_codes(self, column: CompressedColumn, codes: np.ndarray) -> np.ndarray:
        """Map an array of codes back to original values (for output)."""
        raise CodecError(f"codec {self.name!r} cannot decode individual codes")

    # ----- structural views (β = 1 codecs with exploitable layout) --------

    def run_view(
        self, column: CompressedColumn
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """(run values, run lengths) when the payload is run-structured.

        Run values are *original* values, so operators can filter and
        aggregate at run granularity (MorphStore-style) and only expand
        to per-row arrays when an operator genuinely needs them.  ``None``
        (the default) means no run structure is available.
        """
        return None

    def plane_view(self, column: CompressedColumn) -> Optional["PlaneView"]:
        """A :class:`PlaneView` when the payload is per-value bit planes.

        Serves equality-only uses without decompressing: a predicate
        unpacks one plane instead of rebuilding the whole column.  ``None``
        (the default) means no plane structure is available.
        """
        return None

    # ----- misc -----------------------------------------------------------

    def _check_column(self, column: CompressedColumn) -> None:
        if column.codec != self.name:
            raise CodecError(
                f"column was compressed with {column.codec!r}, not {self.name!r}"
            )

    @staticmethod
    def _as_int64(values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.ndim != 1:
            raise CodecError("codecs operate on 1-D columns")
        if values.size == 0:
            raise CodecNotApplicable("cannot compress an empty column")
        return np.ascontiguousarray(values, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class AffineCodec(Codec):
    """Shared direct-processing glue for codecs with value = code + offset."""

    capabilities = frozenset({CAP_EQUALITY, CAP_ORDER, CAP_AFFINE})

    def affine_params(self, column: CompressedColumn) -> Tuple[int, int]:
        self._check_column(column)
        return 1, int(column.meta.get("offset", 0))

    def encode_literal(self, column: CompressedColumn, value: int) -> Optional[int]:
        self._check_column(column)
        return int(value) - int(column.meta.get("offset", 0))

    def lower_bound(self, column: CompressedColumn, value: int) -> int:
        self._check_column(column)
        return int(value) - int(column.meta.get("offset", 0))

    def decode_codes(self, column: CompressedColumn, codes: np.ndarray) -> np.ndarray:
        self._check_column(column)
        offset = int(column.meta.get("offset", 0))
        return np.asarray(codes, dtype=np.int64) + offset
