"""Cascaded codec families — two-stage codecs behind the ``Codec`` interface.

The adaptive-column-compression-family line of work (PAPERS.md) shows that
*cascades* — a cheap value-to-code transform followed by a second codec on
the transformed codes — dominate single codecs on many real distributions:
DICT→RLE compresses runny low-cardinality columns past either stage alone,
DELTA→NS turns slowly-varying timestamps into one-byte packed deltas, and
BD→NSV narrows a shifted domain per element.  A cascade is itself a codec:
``CascadeCodec`` chains a :class:`StageTransform` (stage 1, exact inverse,
tiny metadata) with an existing registered codec (stage 2) on the int64
code array, so every cascade inherits the registry, the wire format, the
selector, and both kernel dispatch modes for free.

Wire layout: the payload *is* the stage-2 payload; the column metadata
holds the stage-1 metadata under its own keys plus every stage-2 meta
entry under an ``s2_`` prefix, all of which are wire-serializable types.
``nbytes`` charges the stage-2 transmitted size plus the stage-1 metadata
(dictionary / base / first value), mirroring how DICT charges its
dictionary.

Cascades are β = 1 (the server reconstructs before value-level querying)
but expose the same structural escape hatches as their stage-2 codec:
``dict+rle`` yields a :meth:`run_view` in *original* values and
``dict+bitmap`` a :meth:`plane_view` whose planes are addressed by
original values — the sorted, order-preserving stage-1 dictionary makes
both views exact.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, ClassVar, Dict, Optional, Tuple

import numpy as np

from ..errors import CodecError
from ..stats import ColumnStats
from ..types import bytes_for_signed, bytes_for_unsigned
from .base import Codec, CompressedColumn, PlaneView
from .bitmap import BitmapCodec
from .kernels import dict_encode
from .null_suppression import NullSuppressionCodec
from .null_suppression_variable import NullSuppressionVariableCodec
from .rle import RunLengthCodec

#: prefix under which stage-2 metadata rides in the cascade column's meta
STAGE2_META_PREFIX = "s2_"


def _clip_width_histogram(histogram: tuple, max_width: int) -> tuple:
    """Clip a per-element width histogram down to ``max_width`` bytes."""
    out = [0] * 9
    for width, count in enumerate(histogram[:9]):
        if count and width:
            out[min(width, max_width)] += count
    return tuple(out)


class StageTransform(ABC):
    """Stage 1 of a cascade: an exact, cheap value→code transform."""

    name: ClassVar[str] = ""

    @abstractmethod
    def encode(self, values: np.ndarray) -> Tuple[np.ndarray, Dict[str, Any]]:
        """(int64 code array of the same length, wire-serializable meta)."""

    @abstractmethod
    def decode(self, codes: np.ndarray, meta: Dict[str, Any]) -> np.ndarray:
        """Exact inverse of :meth:`encode`."""

    @abstractmethod
    def transformed_stats(self, stats: ColumnStats) -> ColumnStats:
        """Approximate statistics of the code array, for Eqs. 10-17."""

    def applicable(self, stats: ColumnStats) -> bool:
        return True

    def meta_nbytes(self, meta: Dict[str, Any]) -> int:
        """Transmitted bytes of the stage-1 metadata."""
        return 8

    def meta_nbytes_estimate(self, stats: ColumnStats) -> int:
        """Estimated transmitted metadata bytes, from statistics alone."""
        return 8


class DictStage(StageTransform):
    """Sorted-dictionary codes: order-preserving, codes are 0..Kindnum-1."""

    name = "dict"

    def encode(self, values: np.ndarray) -> Tuple[np.ndarray, Dict[str, Any]]:
        dictionary, codes = dict_encode(values)
        return codes.astype(np.int64, copy=False), {"dictionary": dictionary}

    def decode(self, codes: np.ndarray, meta: Dict[str, Any]) -> np.ndarray:
        dictionary = meta["dictionary"]
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.min() < 0 or codes.max() >= dictionary.size):
            raise CodecError("cascade dictionary code out of range")
        return dictionary[codes]

    def transformed_stats(self, stats: ColumnStats) -> ColumnStats:
        width = bytes_for_unsigned(max(stats.kindnum - 1, 0))
        return ColumnStats(
            n=stats.n,
            size_c=8,
            min_value=0,
            max_value=max(stats.kindnum - 1, 0),
            kindnum=stats.kindnum,
            avg_run_length=stats.avg_run_length,
            value_domain_max=width,
            value_domain_sum=width * stats.n,
            width_histogram=tuple(
                stats.n if w == width else 0 for w in range(9)
            ),
            delta_min=-(max(stats.kindnum - 1, 0)),
            delta_max=max(stats.kindnum - 1, 0),
        )

    def meta_nbytes(self, meta: Dict[str, Any]) -> int:
        return int(meta["dictionary"].nbytes)

    def meta_nbytes_estimate(self, stats: ColumnStats) -> int:
        return stats.kindnum * stats.size_c


class DeltaStage(StageTransform):
    """Consecutive differences with a leading zero; decode is a prefix sum.

    Differences wrap in two's complement and the prefix sum wraps back, so
    the transform is an exact inverse even at the int64 extremes (the same
    trade ``deltachain`` makes).
    """

    name = "delta"

    def encode(self, values: np.ndarray) -> Tuple[np.ndarray, Dict[str, Any]]:
        codes = np.zeros(values.size, dtype=np.int64)
        if values.size > 1:
            codes[1:] = np.diff(values)
        return codes, {"first": int(values[0])}

    def decode(self, codes: np.ndarray, meta: Dict[str, Any]) -> np.ndarray:
        out = np.cumsum(np.asarray(codes, dtype=np.int64), dtype=np.int64)
        out += int(meta["first"])
        return out

    def transformed_stats(self, stats: ColumnStats) -> ColumnStats:
        lo = min(stats.delta_min, 0)
        hi = max(stats.delta_max, 0)
        width = bytes_for_signed(lo, hi)
        return ColumnStats(
            n=stats.n,
            size_c=8,
            min_value=lo,
            max_value=hi,
            kindnum=stats.kindnum,
            avg_run_length=1.0,
            value_domain_max=width,
            value_domain_sum=width * stats.n,
            width_histogram=tuple(
                stats.n if w == width else 0 for w in range(9)
            ),
            delta_min=lo,
            delta_max=hi,
        )


class BaseDeltaStage(StageTransform):
    """Deltas from the batch minimum: codes are non-negative and narrow."""

    name = "bd"

    def encode(self, values: np.ndarray) -> Tuple[np.ndarray, Dict[str, Any]]:
        base = int(values.min())
        return values - base, {"base": base}

    def decode(self, codes: np.ndarray, meta: Dict[str, Any]) -> np.ndarray:
        return np.asarray(codes, dtype=np.int64) + int(meta["base"])

    def applicable(self, stats: ColumnStats) -> bool:
        # values - min must not overflow the int64 code domain
        return stats.max_value - stats.min_value < (1 << 63)

    def transformed_stats(self, stats: ColumnStats) -> ColumnStats:
        span = stats.max_value - stats.min_value
        width = bytes_for_unsigned(span)
        return ColumnStats(
            n=stats.n,
            size_c=8,
            min_value=0,
            max_value=span,
            kindnum=stats.kindnum,
            avg_run_length=stats.avg_run_length,
            value_domain_max=width,
            value_domain_sum=width * stats.n,
            width_histogram=_clip_width_histogram(stats.width_histogram, width),
            delta_min=stats.delta_min,
            delta_max=stats.delta_max,
        )


class CascadeCodec(Codec):
    """Two-stage codec: a stage transform then a registered codec on codes.

    Concrete cascades are subclasses carrying the stage pair as class
    attributes, so the registry instantiates them with no arguments like
    any other codec.
    """

    is_lazy = True
    needs_decompression = True
    capabilities = frozenset()

    #: stage 1 transform and stage 2 codec, set by each concrete cascade
    stage1: ClassVar[StageTransform]
    stage2: ClassVar[Codec]

    # ----- lifecycle ------------------------------------------------------

    def applicable(self, stats: ColumnStats) -> bool:
        if not self.stage1.applicable(stats):
            return False
        return self.stage2.applicable(self.stage1.transformed_stats(stats))

    def compress(self, values: np.ndarray) -> CompressedColumn:
        values = self._as_int64(values)
        codes, s1_meta = self.stage1.encode(values)
        inner = self.stage2.compress(codes)
        meta: Dict[str, Any] = dict(s1_meta)
        for key, value in inner.meta.items():
            meta[STAGE2_META_PREFIX + key] = value
        return CompressedColumn(
            codec=self.name,
            n=int(values.size),
            payload=inner.payload,
            meta=meta,
            nbytes=inner.nbytes + self.stage1.meta_nbytes(s1_meta),
            source_size_c=8,
        )

    def decompress(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        codes = self.stage2.decompress(self.inner_column(column))
        return self.stage1.decode(codes, column.meta)

    def inner_column(self, column: CompressedColumn) -> CompressedColumn:
        """The stage-2 column view sharing this column's payload."""
        self._check_column(column)
        return CompressedColumn(
            codec=self.stage2.name,
            n=column.n,
            payload=column.payload,
            meta={
                key[len(STAGE2_META_PREFIX) :]: value
                for key, value in column.meta.items()
                if key.startswith(STAGE2_META_PREFIX)
            },
            nbytes=max(int(column.payload.nbytes), 1),
            source_size_c=8,
        )

    # ----- ratio and cost estimation (Eqs. 1-9 generalized) ---------------

    def estimate_ratio(self, stats: ColumnStats) -> float:
        transformed = self.stage1.transformed_stats(stats)
        r2 = self.stage2.estimate_ratio(transformed)
        if r2 <= 0:
            return 0.0
        # stage-2 payload bytes per element on the code array, related back
        # to the *original* element size
        return stats.size_c * r2 / transformed.size_c

    def estimate_transmitted_ratio(self, stats: ColumnStats) -> float:
        transformed = self.stage1.transformed_stats(stats)
        r2 = self.stage2.estimate_transmitted_ratio(transformed)
        if r2 <= 0:
            return 0.0
        payload = transformed.size_c * stats.n / r2
        total = payload + self.stage1.meta_nbytes_estimate(stats)
        return (stats.size_c * stats.n) / total

    def cost_scale(self, stats: ColumnStats, calibration_kindnum: int) -> float:
        return self.stage2.cost_scale(
            self.stage1.transformed_stats(stats), calibration_kindnum
        )


class DictRleCascade(CascadeCodec):
    """DICT→RLE: run-length on dictionary codes; runs decode to values."""

    name = "dict+rle"
    stage1 = DictStage()
    stage2 = RunLengthCodec()

    def run_view(
        self, column: CompressedColumn
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        self._check_column(column)
        view = self.stage2.run_view(self.inner_column(column))
        if view is None:  # pragma: no cover - rle always has runs
            return None
        code_runs, run_lengths = view
        return self.stage1.decode(code_runs, column.meta), run_lengths


class DeltaNsCascade(CascadeCodec):
    """DELTA→NS: fixed-width packed consecutive differences."""

    name = "delta+ns"
    stage1 = DeltaStage()
    stage2 = NullSuppressionCodec()


class BdNsvCascade(CascadeCodec):
    """BD→NSV: per-element-width deltas from the batch minimum."""

    name = "bd+nsv"
    stage1 = BaseDeltaStage()
    stage2 = NullSuppressionVariableCodec()


class DictBitmapCascade(CascadeCodec):
    """DICT→BITMAP: one plane per distinct value, addressed by value."""

    name = "dict+bitmap"
    stage1 = DictStage()
    stage2 = BitmapCodec()

    def plane_view(self, column: CompressedColumn) -> Optional[PlaneView]:
        self._check_column(column)
        inner_view = self.stage2.plane_view(self.inner_column(column))
        if inner_view is None:  # pragma: no cover - bitmap always has planes
            return None
        # stage-1 codes are order-preserving and the inner dictionary is
        # sorted codes, so mapping codes back through the stage-1
        # dictionary keeps the plane order aligned with sorted values
        dictionary = self.stage1.decode(inner_view.dictionary, column.meta)
        return PlaneView(dictionary, column.n, inner_view._mask_fn)
