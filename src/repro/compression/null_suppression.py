"""Null Suppression with fixed length (NS) — eager, β = 0.

Deletes the redundant leading bytes of every element, storing each value at
the column-wide maximum significant width ``ValueDomain_MAX`` (Eq. 12).
Codes *are* the values (narrowed in two's complement when the column holds
negatives), so NS supports every direct-processing capability.
"""

from __future__ import annotations

import numpy as np

from ..stats import ColumnStats, value_domain
from .base import AffineCodec, CompressedColumn
from .kernels import pack_ints, unpack_ints


class NullSuppressionCodec(AffineCodec):
    """Fixed-width leading-zero suppression (the paper's NS)."""

    name = "ns"
    is_lazy = False
    needs_decompression = False

    def compress(self, values: np.ndarray) -> CompressedColumn:
        values = self._as_int64(values)
        signed = bool((values < 0).any())
        width = int(value_domain(values, signed=signed).max())
        payload = pack_ints(values, width, signed=signed)
        return CompressedColumn(
            codec=self.name,
            n=int(values.size),
            payload=payload,
            meta={"width": width, "signed": signed, "offset": 0},
            source_size_c=8,
        )

    def decompress(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        return unpack_ints(
            column.payload,
            int(column.meta["width"]),
            column.n,
            signed=bool(column.meta["signed"]),
        )

    def estimate_ratio(self, stats: ColumnStats) -> float:
        # Eq. 12: r = Size_C / ValueDomain_MAX
        return stats.size_c / stats.ns_width

    def direct_codes(self, column: CompressedColumn) -> np.ndarray:
        # NS codes equal the original values; materializing the narrow
        # payload into an int64 view is part of the byte-proportional scan.
        return self.decompress(column)
