"""Scalar (tuple-at-a-time) reference implementations of every batch kernel.

The vectorized kernels in :mod:`.kernels` are the production hot paths; the
functions here are their *reference oracles*: deliberately simple,
per-element Python loops whose output the vectorized versions must match
bit-for-bit (compressed payloads) and value-for-value (decoded arrays).
``tests/test_vectorized_kernels.py`` asserts the equivalence with
hypothesis properties, and the differential oracle's ``vectorized`` leg
re-checks it under real query workloads.

Nothing here is fast, and nothing here should be: when a vectorized
kernel and its scalar reference disagree, the scalar loop is the spec.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import CodecError
from .bitstream import BitReader, BitWriter

# PLWAH word layout (mirrors .plwah; duplicated so the reference stays
# readable in one place)
GROUP_BITS = 31
LITERAL_ONES = (1 << GROUP_BITS) - 1
MAX_FILL = (1 << 25) - 1
_FILL_FLAG = 1 << 31
_FILL_ONE = 1 << 30
_POS_SHIFT = 25
_POS_MASK = 0x1F


# ----- exact-width integer packing --------------------------------------


def pack_int_array(
    values: np.ndarray, width: int, *, signed: bool = False
) -> np.ndarray:
    """Per-value ``int.to_bytes`` packing (reference for types.pack_int_array)."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    out = bytearray()
    for v in values.tolist():
        try:
            out += int(v).to_bytes(width, "little", signed=signed)
        except OverflowError:
            raise CodecError(f"value out of range for {width}-byte packing") from None
    return np.frombuffer(bytes(out), dtype=np.uint8).copy()


def unpack_int_array(
    payload: np.ndarray, width: int, count: int, *, signed: bool = False
) -> np.ndarray:
    """Per-value ``int.from_bytes`` unpacking (reference for types.unpack_int_array)."""
    payload = np.ascontiguousarray(payload, dtype=np.uint8)
    if payload.size != count * width:
        raise CodecError(
            f"payload has {payload.size} bytes, expected {count * width} "
            f"({count} elements x {width} bytes)"
        )
    raw = payload.tobytes()
    out = np.empty(count, dtype=np.int64)
    for i in range(count):
        out[i] = int.from_bytes(
            raw[i * width : (i + 1) * width], "little", signed=signed
        )
    return out


# ----- aligned Elias codeword math --------------------------------------


def gamma_codeword_ints(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-value gamma (codeword int, bit length) pairs."""
    values = np.asarray(values, dtype=np.int64)
    codes = np.empty(values.size, dtype=np.int64)
    bits = np.empty(values.size, dtype=np.int64)
    for i, v in enumerate(values.tolist()):
        if v < 1:
            raise CodecError("Elias Gamma encodes positive integers only")
        n = int(v).bit_length() - 1
        codes[i] = v
        bits[i] = 2 * n + 1
    return codes, bits


def delta_codeword_ints(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-value delta (codeword int, bit length) pairs."""
    values = np.asarray(values, dtype=np.int64)
    codes = np.empty(values.size, dtype=np.int64)
    bits = np.empty(values.size, dtype=np.int64)
    for i, v in enumerate(values.tolist()):
        if v < 1:
            raise CodecError("Elias Delta encodes positive integers only")
        if v >= (1 << 56):
            raise CodecError("aligned Elias Delta supports values below 2^56")
        n = int(v).bit_length() - 1
        ln = (n + 1).bit_length() - 1
        codes[i] = v + n * (1 << n)
        bits[i] = (2 * ln + 1) + n
    return codes, bits


def delta_codeword_invert(codes: np.ndarray) -> np.ndarray:
    """Per-value inverse of :func:`delta_codeword_ints`."""
    codes = np.asarray(codes, dtype=np.int64)
    out = np.empty(codes.size, dtype=np.int64)
    for i, c in enumerate(codes.tolist()):
        # find n with (n + 1) * 2^n <= c <= (n + 2) * 2^n - 1
        n = -1
        for cand in range(58):
            if (cand + 1) << cand <= c:
                n = cand
            else:
                break
        if n < 0:
            raise CodecError("invalid Elias Delta codeword")
        out[i] = c - n * (1 << n)
    return out


# ----- unaligned bitstreams ---------------------------------------------


def gamma_stream_encode(values: np.ndarray) -> bytes:
    """Classic per-value Elias Gamma bitstream writer."""
    writer = BitWriter()
    for v in np.asarray(values, dtype=np.int64).tolist():
        v = int(v)
        if v < 1:
            raise CodecError("Elias Gamma encodes positive integers only")
        n = v.bit_length() - 1
        writer.write_unary(n)
        if n:
            writer.write(v - (1 << n), n)
    return writer.getvalue()


def gamma_stream_decode(data: bytes, count: int) -> np.ndarray:
    """Per-value Elias Gamma bitstream reader."""
    reader = BitReader(data)
    out = np.empty(count, dtype=np.int64)
    for i in range(count):
        n = reader.read_unary()
        rest = reader.read(n) if n else 0
        out[i] = (1 << n) | rest
    return out


def delta_stream_encode(values: np.ndarray) -> bytes:
    """Classic per-value Elias Delta bitstream writer."""
    writer = BitWriter()
    for v in np.asarray(values, dtype=np.int64).tolist():
        v = int(v)
        if v < 1:
            raise CodecError("Elias Delta encodes positive integers only")
        n = v.bit_length() - 1
        length = n + 1
        ln = length.bit_length() - 1
        writer.write_unary(ln)
        if ln:
            writer.write(length - (1 << ln), ln)
        if n:
            writer.write(v - (1 << n), n)
    return writer.getvalue()


def delta_stream_decode(data: bytes, count: int) -> np.ndarray:
    """Per-value Elias Delta bitstream reader."""
    reader = BitReader(data)
    out = np.empty(count, dtype=np.int64)
    for i in range(count):
        ln = reader.read_unary()
        length = (1 << ln) | (reader.read(ln) if ln else 0)
        n = length - 1
        rest = reader.read(n) if n else 0
        out[i] = (1 << n) | rest
    return out


# ----- run-length encoding ----------------------------------------------


def rle_runs(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-value run detection: (run values, run lengths)."""
    values = np.asarray(values, dtype=np.int64)
    run_values: List[int] = []
    run_lengths: List[int] = []
    for v in values.tolist():
        if run_values and run_values[-1] == v:
            run_lengths[-1] += 1
        else:
            run_values.append(v)
            run_lengths.append(1)
    return (
        np.asarray(run_values, dtype=np.int64),
        np.asarray(run_lengths, dtype=np.int64),
    )


# ----- dictionary encoding ----------------------------------------------


def dict_encode(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-value dictionary build + binary-search coding."""
    values = np.asarray(values, dtype=np.int64)
    dictionary = sorted(set(values.tolist()))
    index = {v: i for i, v in enumerate(dictionary)}
    codes = np.empty(values.size, dtype=np.int64)
    for i, v in enumerate(values.tolist()):
        codes[i] = index[v]
    return np.asarray(dictionary, dtype=np.int64), codes


# ----- base-delta -------------------------------------------------------


def bd_deltas(values: np.ndarray) -> Tuple[int, np.ndarray]:
    """Per-value delta-from-base computation: (base, deltas)."""
    values = np.asarray(values, dtype=np.int64)
    base = min(values.tolist())
    deltas = np.empty(values.size, dtype=np.int64)
    for i, v in enumerate(values.tolist()):
        deltas[i] = v - base
    return int(base), deltas


# ----- bitmap planes ----------------------------------------------------


def bitmap_planes(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-value bit-plane construction: (sorted dictionary, bool planes)."""
    values = np.asarray(values, dtype=np.int64)
    dictionary = sorted(set(values.tolist()))
    index = {v: i for i, v in enumerate(dictionary)}
    planes = np.zeros((len(dictionary), values.size), dtype=bool)
    for i, v in enumerate(values.tolist()):
        planes[index[v], i] = True
    return np.asarray(dictionary, dtype=np.int64), planes


# ----- NSV pack / unpack ------------------------------------------------

_NSV_WIDTHS = (1, 2, 4, 8)


def _nsv_width_of(value: int, signed: bool) -> int:
    for width in _NSV_WIDTHS:
        if signed:
            bound = 1 << (8 * width - 1)
            if -bound <= value < bound:
                return width
        elif 0 <= value < (1 << (8 * width)):
            return width
    raise CodecError(f"value {value} does not fit 8 bytes")  # pragma: no cover


def nsv_pack(values: np.ndarray, signed: bool) -> Tuple[np.ndarray, np.ndarray]:
    """Per-value NSV packing: (descriptor bytes, data bytes)."""
    values = np.asarray(values, dtype=np.int64)
    descriptors: List[int] = []
    data = bytearray()
    for v in values.tolist():
        width = _nsv_width_of(int(v), signed)
        descriptors.append(_NSV_WIDTHS.index(width))
        data += int(v).to_bytes(width, "little", signed=signed)
    desc = bytearray()
    for i in range(0, len(descriptors), 4):
        quad = descriptors[i : i + 4] + [0] * (4 - len(descriptors[i : i + 4]))
        desc.append(quad[0] | (quad[1] << 2) | (quad[2] << 4) | (quad[3] << 6))
    return (
        np.frombuffer(bytes(desc), dtype=np.uint8).copy(),
        np.frombuffer(bytes(data), dtype=np.uint8).copy(),
    )


def nsv_unpack(
    desc_bytes: np.ndarray, data: np.ndarray, count: int, signed: bool
) -> np.ndarray:
    """Per-value NSV unpacking."""
    desc_raw = np.ascontiguousarray(desc_bytes, dtype=np.uint8).tobytes()
    raw = np.ascontiguousarray(data, dtype=np.uint8).tobytes()
    if len(desc_raw) * 4 < count:
        raise CodecError(
            f"nsv descriptor section covers {len(desc_raw) * 4} elements, "
            f"column claims {count}"
        )
    out = np.empty(count, dtype=np.int64)
    offset = 0
    for i in range(count):
        code = (desc_raw[i // 4] >> (2 * (i % 4))) & 0x3
        width = _NSV_WIDTHS[code]
        if offset + width > len(raw):
            raise CodecError(
                f"nsv payload truncated: data section holds {len(raw)} bytes, "
                f"descriptors require more"
            )
        out[i] = int.from_bytes(raw[offset : offset + width], "little", signed=signed)
        offset += width
    return out


# ----- PLWAH ------------------------------------------------------------


def _to_groups(bits: np.ndarray) -> List[int]:
    """Per-bit 31-bit group packing (MSB-first)."""
    bits = np.asarray(bits, dtype=bool).tolist()
    groups: List[int] = []
    for i in range(0, len(bits), GROUP_BITS):
        chunk = bits[i : i + GROUP_BITS]
        g = 0
        for j in range(GROUP_BITS):
            g = (g << 1) | (1 if j < len(chunk) and chunk[j] else 0)
        groups.append(g)
    return groups


def plwah_encode(bits: np.ndarray) -> np.ndarray:
    """Per-group PLWAH encoder (the original loop implementation)."""
    groups = _to_groups(np.asarray(bits, dtype=bool))
    words: List[int] = []
    i = 0
    n = len(groups)
    while i < n:
        g = groups[i]
        if g == 0 or g == LITERAL_ONES:
            fill_bit = 1 if g == LITERAL_ONES else 0
            j = i
            while j < n and groups[j] == g and (j - i) < MAX_FILL:
                j += 1
            count = j - i
            position = 0
            if fill_bit == 0 and j < n:
                nxt = groups[j]
                if nxt != 0 and (nxt & (nxt - 1)) == 0:
                    # Single dirty bit: absorb the next group into this fill.
                    position = GROUP_BITS - int(nxt).bit_length() + 1
                    j += 1
            words.append(
                _FILL_FLAG
                | (_FILL_ONE if fill_bit else 0)
                | (position << _POS_SHIFT)
                | count
            )
            i = j
        else:
            words.append(g)
            i += 1
    return np.asarray(words, dtype=np.uint32)


def plwah_decode(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Per-word PLWAH decoder (the original loop implementation)."""
    groups: List[int] = []
    for w in np.asarray(words, dtype=np.uint32):
        w = int(w)
        if w & _FILL_FLAG:
            fill = LITERAL_ONES if (w & _FILL_ONE) else 0
            count = w & MAX_FILL
            groups.extend([fill] * count)
            position = (w >> _POS_SHIFT) & _POS_MASK
            if position:
                if w & _FILL_ONE:
                    raise CodecError("position list on a one-fill is invalid")
                groups.append(1 << (GROUP_BITS - position))
        else:
            groups.append(w)
    expected = (n_bits + GROUP_BITS - 1) // GROUP_BITS
    if len(groups) != expected:
        raise CodecError(
            f"PLWAH stream decodes to {len(groups)} groups, expected {expected}"
        )
    out = np.zeros(n_bits, dtype=bool)
    for gi, g in enumerate(groups):
        for j in range(GROUP_BITS):
            p = gi * GROUP_BITS + j
            if p >= n_bits:
                break
            out[p] = bool((g >> (GROUP_BITS - 1 - j)) & 1)
    return out
