"""Elias Delta encoding (ED) — eager, β = 0, aligned format.

Each value v is stored as the delta codeword of v + 1, padded to the
column-wide maximum codeword width ``EDDomain`` (Eq. 11).  Delta codewords
read as integers are ``x + floor(log2 x) * 2**floor(log2 x)`` — a strictly
increasing but *non-affine* map.  Aligned ED therefore supports equality
and order directly, while arithmetic aggregation (sum/avg) forces a decode,
which is why ED is the slowest β = 0 method in the paper's Fig. 8.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import CodecNotApplicable
from ..stats import ColumnStats
from .base import CAP_EQUALITY, CAP_ORDER, Codec, CompressedColumn
from .kernels import delta_codewords, delta_invert, pack_ints, unpack_ints


class EliasDeltaCodec(Codec):
    """Aligned Elias Delta encoding (the paper's ED)."""

    name = "ed"
    is_lazy = False
    needs_decompression = False
    capabilities = frozenset({CAP_EQUALITY, CAP_ORDER})

    def applicable(self, stats: ColumnStats) -> bool:
        # the aligned codeword must both fit 8 bytes and stay within int64
        if not stats.all_positive_domain or stats.max_value >= (1 << 53):
            return False
        return stats.ed_domain_bytes <= 8

    def compress(self, values: np.ndarray) -> CompressedColumn:
        values = self._as_int64(values)
        if values.min() < 0:
            raise CodecNotApplicable("Elias Delta cannot encode negative values")
        if int(values.max()) >= (1 << 53):
            raise CodecNotApplicable("Elias Delta supports values below 2^53 here")
        codes, bits = delta_codewords(values + 1)
        width = int((bits.max() + 7) // 8)
        if width > 8:
            raise CodecNotApplicable(
                "aligned Elias Delta codewords exceed 8 bytes for this column"
            )
        payload = pack_ints(codes, width, signed=False)
        return CompressedColumn(
            codec=self.name,
            n=int(values.size),
            payload=payload,
            meta={"width": width},
            source_size_c=8,
        )

    def decompress(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        codes = unpack_ints(column.payload, int(column.meta["width"]), column.n)
        return delta_invert(codes) - 1

    def estimate_ratio(self, stats: ColumnStats) -> float:
        # Eq. 11: r = Size_C / EDDomain
        return stats.size_c / stats.ed_domain_bytes

    def direct_codes(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        return unpack_ints(column.payload, int(column.meta["width"]), column.n)

    def encode_literal(self, column: CompressedColumn, value: int) -> Optional[int]:
        self._check_column(column)
        if value < 0:
            return None
        codes, _ = delta_codewords(np.array([value + 1], dtype=np.int64))
        return int(codes[0])

    def lower_bound(self, column: CompressedColumn, value: int) -> int:
        self._check_column(column)
        if value < 0:
            return 0
        codes, _ = delta_codewords(np.array([value + 1], dtype=np.int64))
        return int(codes[0])

    def decode_codes(self, column: CompressedColumn, codes: np.ndarray) -> np.ndarray:
        self._check_column(column)
        return delta_invert(np.asarray(codes, dtype=np.int64)) - 1
