"""Elias Gamma encoding (EG) — eager, β = 0, aligned format.

Each value v is encoded as the gamma codeword of v + 1 (the shift admits
zeros; columns with negatives are not applicable, matching the paper's note
on the Linear Road Benchmark).  The aligned format pads every codeword to
``EGDomain`` bytes — the maximum codeword width in the column (Eq. 10) — so
the compressed column stays structured.  Because a gamma codeword read as
an integer equals its value, aligned EG codes are ``v + 1``: equality,
order and affine direct processing all hold, just at roughly twice the
width Null Suppression would use, which is exactly why EG loses to NS in
the paper's Fig. 5/8.
"""

from __future__ import annotations

import numpy as np

from ..errors import CodecNotApplicable
from ..stats import ColumnStats
from .base import AffineCodec, CompressedColumn
from .kernels import gamma_codewords, pack_ints, unpack_ints


class EliasGammaCodec(AffineCodec):
    """Aligned Elias Gamma encoding (the paper's EG)."""

    name = "eg"
    is_lazy = False
    needs_decompression = False

    def applicable(self, stats: ColumnStats) -> bool:
        # the aligned codeword must fit 8 bytes: gamma bits 2n+1 <= 64
        return stats.all_positive_domain and stats.max_value + 1 < (1 << 32)

    def compress(self, values: np.ndarray) -> CompressedColumn:
        values = self._as_int64(values)
        if values.min() < 0:
            raise CodecNotApplicable("Elias Gamma cannot encode negative values")
        codes, bits = gamma_codewords(values + 1)
        width = int((bits.max() + 7) // 8)
        if width > 8:
            raise CodecNotApplicable(
                "aligned Elias Gamma codewords exceed 8 bytes for this column"
            )
        payload = pack_ints(codes, width, signed=False)
        return CompressedColumn(
            codec=self.name,
            n=int(values.size),
            payload=payload,
            meta={"width": width, "offset": -1},
            source_size_c=8,
        )

    def decompress(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        codes = unpack_ints(column.payload, int(column.meta["width"]), column.n)
        return codes - 1

    def estimate_ratio(self, stats: ColumnStats) -> float:
        # Eq. 10: r = Size_C / EGDomain
        return stats.size_c / stats.eg_domain_bytes

    def direct_codes(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        return unpack_ints(column.payload, int(column.meta["width"]), column.n)
