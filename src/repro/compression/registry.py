"""Codec registry: name -> codec instance, and the paper's default pool."""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import CodecError
from .base import Codec
from .base_delta import BaseDeltaCodec
from .bitmap import BitmapCodec
from .cascade import (
    BdNsvCascade,
    DictBitmapCascade,
    DictRleCascade,
    DeltaNsCascade,
)
from .delta_chain import DeltaChainCodec
from .dictionary import DictionaryCodec
from .elias_delta import EliasDeltaCodec
from .elias_gamma import EliasGammaCodec
from .gzip_codec import GzipCodec
from .identity import IdentityCodec
from .null_suppression import NullSuppressionCodec
from .null_suppression_variable import NullSuppressionVariableCodec
from .plwah import PLWAHCodec
from .rle import RunLengthCodec

__all__ = [
    "PAPER_POOL",
    "CASCADE_POOL",
    "get_codec",
    "all_codec_names",
    "default_pool",
]

#: Names of the eight lightweight methods of Table I, in paper order.
PAPER_POOL = ("eg", "ed", "ns", "nsv", "bd", "rle", "dict", "bitmap")

#: The curated cascade menu (two-stage codec families; see cascade.py).
CASCADE_POOL = ("dict+rle", "delta+ns", "bd+nsv", "dict+bitmap")

_CODEC_CLASSES = (
    IdentityCodec,
    DeltaChainCodec,
    EliasGammaCodec,
    EliasDeltaCodec,
    NullSuppressionCodec,
    NullSuppressionVariableCodec,
    BaseDeltaCodec,
    RunLengthCodec,
    DictionaryCodec,
    BitmapCodec,
    PLWAHCodec,
    GzipCodec,
    DictRleCascade,
    DeltaNsCascade,
    BdNsvCascade,
    DictBitmapCascade,
)

_REGISTRY: Dict[str, Codec] = {cls.name: cls() for cls in _CODEC_CLASSES}


def get_codec(name: str) -> Codec:
    """Look up a codec instance by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise CodecError(f"unknown codec {name!r}; known: {known}") from None


def all_codec_names() -> List[str]:
    """Every registered codec name (including baselines and extensions)."""
    return sorted(_REGISTRY)


def default_pool(
    include_plwah: bool = False, extensions: Sequence[str] = ()
) -> List[Codec]:
    """The adaptive selector's candidate pool (Table I, plus identity).

    Identity is always a candidate: when no codec beats "no compression"
    under the cost model, the selector falls back to it, which is the
    paper's hybrid uncompressed mode.  ``include_plwah`` adds the Sec.
    VII-D extension; ``extensions`` adds further registered codecs (e.g.
    ``("deltachain",)``) — the open-integration story of Sec. VII-D.
    """
    names: Sequence[str] = ("identity",) + PAPER_POOL
    if include_plwah:
        names = tuple(names) + ("plwah",)
    for extra in extensions:
        if extra not in names:
            names = tuple(names) + (extra,)
    return [get_codec(name) for name in names]
