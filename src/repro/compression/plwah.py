"""PLWAH — Position List Word Aligned Hybrid compressed bitmaps.

The paper's Sec. VII-D extension: bitmap planes (one per distinct value,
as in :mod:`.bitmap`) are themselves compressed with the PLWAH scheme of
Deliège & Pedersen [41].  We use 32-bit words:

* literal word:  bit 31 = 0, bits 0..30 carry 31 bitmap bits;
* fill word:     bit 31 = 1, bit 30 = fill bit, bits 25..29 a position
  list entry, bits 0..24 the run length in 31-bit groups.  A non-zero
  position p means the group following the zero-fill contained exactly one
  set bit at index p - 1 and was absorbed into the fill word.

β = 1: the server decompresses planes before querying.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import CodecError
from ..stats import ColumnStats
from .base import Codec, CompressedColumn
from .bitmap import build_bitplanes

GROUP_BITS = 31
LITERAL_ONES = (1 << GROUP_BITS) - 1
MAX_FILL = (1 << 25) - 1

_FILL_FLAG = 1 << 31
_FILL_ONE = 1 << 30
_POS_SHIFT = 25
_POS_MASK = 0x1F


def _to_groups(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean vector into 31-bit little-group integers (MSB-first)."""
    n_groups = (bits.size + GROUP_BITS - 1) // GROUP_BITS
    padded = np.zeros(n_groups * GROUP_BITS, dtype=bool)
    padded[: bits.size] = bits
    weights = np.int64(1) << np.arange(GROUP_BITS - 1, -1, -1, dtype=np.int64)
    return (padded.reshape(n_groups, GROUP_BITS) * weights).sum(axis=1)


def _from_groups(groups: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`_to_groups`."""
    shifts = np.arange(GROUP_BITS - 1, -1, -1, dtype=np.int64)
    bits = ((groups[:, None] >> shifts) & 1).astype(bool).reshape(-1)
    return bits[:n_bits]


def plwah_encode(bits: np.ndarray) -> np.ndarray:
    """Encode a boolean vector into PLWAH 32-bit words."""
    groups = _to_groups(np.asarray(bits, dtype=bool))
    words: List[int] = []
    i = 0
    n = groups.size
    while i < n:
        g = int(groups[i])
        if g == 0 or g == LITERAL_ONES:
            fill_bit = 1 if g == LITERAL_ONES else 0
            j = i
            while j < n and int(groups[j]) == g and (j - i) < MAX_FILL:
                j += 1
            count = j - i
            position = 0
            if fill_bit == 0 and j < n:
                nxt = int(groups[j])
                if nxt != 0 and (nxt & (nxt - 1)) == 0:
                    # Single dirty bit: absorb the next group into this fill.
                    position = GROUP_BITS - int(nxt).bit_length() + 1
                    j += 1
            words.append(
                _FILL_FLAG
                | (_FILL_ONE if fill_bit else 0)
                | (position << _POS_SHIFT)
                | count
            )
            i = j
        else:
            words.append(g)
            i += 1
    return np.asarray(words, dtype=np.uint32)


def plwah_decode(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Decode PLWAH words back into a boolean vector of length ``n_bits``."""
    groups: List[int] = []
    for w in np.asarray(words, dtype=np.uint32):
        w = int(w)
        if w & _FILL_FLAG:
            fill = LITERAL_ONES if (w & _FILL_ONE) else 0
            count = w & MAX_FILL
            groups.extend([fill] * count)
            position = (w >> _POS_SHIFT) & _POS_MASK
            if position:
                if w & _FILL_ONE:
                    raise CodecError("position list on a one-fill is invalid")
                groups.append(1 << (GROUP_BITS - position))
        else:
            groups.append(w)
    expected = (n_bits + GROUP_BITS - 1) // GROUP_BITS
    if len(groups) != expected:
        raise CodecError(
            f"PLWAH stream decodes to {len(groups)} groups, expected {expected}"
        )
    return _from_groups(np.asarray(groups, dtype=np.int64), n_bits)


class PLWAHCodec(Codec):
    """Bitmap planes compressed with PLWAH (Sec. VII-D extension)."""

    name = "plwah"
    is_lazy = True
    needs_decompression = True
    capabilities = frozenset()

    def compress(self, values: np.ndarray) -> CompressedColumn:
        values = self._as_int64(values)
        dictionary, planes = build_bitplanes(values)
        encoded = [plwah_encode(plane) for plane in planes]
        lengths = np.asarray([w.size for w in encoded], dtype=np.int64)
        payload = (
            np.concatenate(encoded).view(np.uint8)
            if encoded
            else np.zeros(0, dtype=np.uint8)
        )
        nbytes = int(lengths.sum()) * 4 + dictionary.nbytes + lengths.nbytes
        return CompressedColumn(
            codec=self.name,
            n=int(values.size),
            payload=payload,
            meta={"dictionary": dictionary, "plane_words": lengths},
            nbytes=nbytes,
            source_size_c=8,
        )

    def decompress(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        dictionary = column.meta["dictionary"]
        lengths = column.meta["plane_words"]
        words = column.payload.view(np.uint32)
        out = np.full(column.n, -1, dtype=np.int64)
        offset = 0
        for code, count in enumerate(lengths):
            plane_words = words[offset: offset + int(count)]
            offset += int(count)
            bits = plwah_decode(plane_words, column.n)
            out[bits] = code
        if (out < 0).any():
            raise CodecError("PLWAH planes do not cover every position")
        return dictionary[out]

    def estimate_ratio(self, stats: ColumnStats) -> float:
        """Approximate ratio from run structure.

        Each plane is dominated by zero fills; with average run length L the
        value's plane has about n/L literal-or-absorbed words per plane
        appearance.  We approximate the word count as one fill + one
        absorbed position per occurrence run, i.e. ~2 words per run spread
        over Kindnum planes, plus per-plane constant overhead.
        """
        runs = stats.n / max(stats.avg_run_length, 1.0)
        words = 2.0 * runs + 2.0 * stats.kindnum
        nbytes = words * 4 + stats.kindnum * 8
        return (stats.size_c * stats.n) / nbytes

    def cost_scale(self, stats: ColumnStats, calibration_kindnum: int) -> float:
        # one PLWAH stream per plane: O(n * Kindnum) like plain Bitmap
        return max(stats.kindnum, 1) / max(calibration_kindnum, 1)
