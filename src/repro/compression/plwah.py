"""PLWAH — Position List Word Aligned Hybrid compressed bitmaps.

The paper's Sec. VII-D extension: bitmap planes (one per distinct value,
as in :mod:`.bitmap`) are themselves compressed with the PLWAH scheme of
Deliège & Pedersen [41].  We use 32-bit words:

* literal word:  bit 31 = 0, bits 0..30 carry 31 bitmap bits;
* fill word:     bit 31 = 1, bit 30 = fill bit, bits 25..29 a position
  list entry, bits 0..24 the run length in 31-bit groups.  A non-zero
  position p means the group following the zero-fill contained exactly one
  set bit at index p - 1 and was absorbed into the fill word.

β = 1: the server decompresses planes before querying.
"""

from __future__ import annotations

import numpy as np

from ..errors import CodecError
from ..stats import ColumnStats
from .base import Codec, CompressedColumn, PlaneView
from .bitmap import build_bitplanes
from .kernels import from_groups, plwah_decode, plwah_encode, to_groups

GROUP_BITS = 31
LITERAL_ONES = (1 << GROUP_BITS) - 1
MAX_FILL = (1 << 25) - 1

_FILL_FLAG = 1 << 31
_FILL_ONE = 1 << 30
_POS_SHIFT = 25
_POS_MASK = 0x1F

# run-loop encode/decode live in kernels (vectorized) and scalar_ref
# (the original per-group loops); the public names dispatch between them
__all__ = [
    "GROUP_BITS",
    "LITERAL_ONES",
    "MAX_FILL",
    "PLWAHCodec",
    "from_groups",
    "plwah_decode",
    "plwah_encode",
    "to_groups",
]

_to_groups = to_groups
_from_groups = from_groups


class PLWAHCodec(Codec):
    """Bitmap planes compressed with PLWAH (Sec. VII-D extension)."""

    name = "plwah"
    is_lazy = True
    needs_decompression = True
    capabilities = frozenset()

    def compress(self, values: np.ndarray) -> CompressedColumn:
        values = self._as_int64(values)
        dictionary, planes = build_bitplanes(values)
        encoded = [plwah_encode(plane) for plane in planes]
        lengths = np.asarray([w.size for w in encoded], dtype=np.int64)
        payload = (
            np.concatenate(encoded).view(np.uint8)
            if encoded
            else np.zeros(0, dtype=np.uint8)
        )
        nbytes = int(lengths.sum()) * 4 + dictionary.nbytes + lengths.nbytes
        return CompressedColumn(
            codec=self.name,
            n=int(values.size),
            payload=payload,
            meta={"dictionary": dictionary, "plane_words": lengths},
            nbytes=nbytes,
            source_size_c=8,
        )

    def decompress(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        dictionary = column.meta["dictionary"]
        lengths = column.meta["plane_words"]
        words = column.payload.view(np.uint32)
        out = np.full(column.n, -1, dtype=np.int64)
        offset = 0
        for code, count in enumerate(lengths):
            plane_words = words[offset : offset + int(count)]
            offset += int(count)
            bits = plwah_decode(plane_words, column.n)
            out[bits] = code
        if (out < 0).any():
            raise CodecError("PLWAH planes do not cover every position")
        return dictionary[out]

    def plane_view(self, column: CompressedColumn) -> PlaneView:
        """Equality predicates decode one PLWAH stream; the rest stay packed."""
        self._check_column(column)
        dictionary = column.meta["dictionary"]
        lengths = np.asarray(column.meta["plane_words"], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        words = column.payload.view(np.uint32)
        n = column.n

        def mask_fn(idx: int) -> np.ndarray:
            plane_words = words[int(offsets[idx]) : int(offsets[idx + 1])]
            return plwah_decode(plane_words, n)

        return PlaneView(dictionary, n, mask_fn)

    def estimate_ratio(self, stats: ColumnStats) -> float:
        """Approximate ratio from run structure.

        Each plane is dominated by zero fills; with average run length L the
        value's plane has about n/L literal-or-absorbed words per plane
        appearance.  We approximate the word count as one fill + one
        absorbed position per occurrence run, i.e. ~2 words per run spread
        over Kindnum planes, plus per-plane constant overhead.
        """
        runs = stats.n / max(stats.avg_run_length, 1.0)
        words = 2.0 * runs + 2.0 * stats.kindnum
        nbytes = words * 4 + stats.kindnum * 8
        return (stats.size_c * stats.n) / nbytes

    def cost_scale(self, stats: ColumnStats, calibration_kindnum: int) -> float:
        # one PLWAH stream per plane: O(n * Kindnum) like plain Bitmap
        return max(stats.kindnum, 1) / max(calibration_kindnum, 1)
