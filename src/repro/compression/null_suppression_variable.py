"""Null Suppression with variable length (NSV) — eager, β = 1.

Every element is stored at its own significant width, chosen from four
machine-friendly widths, with a 2-bit length descriptor per element (the
``Size_B / 4`` descriptor bytes in Eq. 13).  The payload is not
element-aligned, so the server must decompress before querying — NSV is one
of the paper's "lightweight decompression-required" special cases, and its
descriptor-translation cost is why it dominates decompression time in
Fig. 8.
"""

from __future__ import annotations

import numpy as np

from ..errors import CodecError
from ..stats import ColumnStats, value_domain
from .base import Codec, CompressedColumn

#: The four encodable widths; a 2-bit descriptor selects one.
WIDTH_CHOICES = np.array([1, 2, 4, 8], dtype=np.int64)


def _descriptor_for_widths(exact_widths: np.ndarray) -> np.ndarray:
    """Map exact byte widths (1..8) to descriptor codes (0..3)."""
    return np.searchsorted(WIDTH_CHOICES, exact_widths, side="left").astype(np.uint8)


class NullSuppressionVariableCodec(Codec):
    """Per-element-width leading-zero suppression (the paper's NSV)."""

    name = "nsv"
    is_lazy = False
    needs_decompression = True
    capabilities = frozenset()

    def compress(self, values: np.ndarray) -> CompressedColumn:
        values = self._as_int64(values)
        n = int(values.size)
        signed = bool((values < 0).any())
        descriptors = _descriptor_for_widths(value_domain(values, signed=signed))
        widths = WIDTH_CHOICES[descriptors]

        # Pack descriptors 4 per byte (2 bits each, little positions first).
        padded = np.zeros(((n + 3) // 4) * 4, dtype=np.uint8)
        padded[:n] = descriptors
        quads = padded.reshape(-1, 4)
        desc_bytes = (
            quads[:, 0] | (quads[:, 1] << 2) | (quads[:, 2] << 4) | (quads[:, 3] << 6)
        ).astype(np.uint8)

        # Scatter each element's low `width` bytes into the data section.
        offsets = np.zeros(n, dtype=np.int64)
        np.cumsum(widths[:-1], out=offsets[1:])
        total = int(offsets[-1] + widths[-1]) if n else 0
        data = np.zeros(total, dtype=np.uint8)
        raw = values.view(np.uint8).reshape(n, 8)
        for code, width in enumerate(WIDTH_CHOICES):
            idx = np.nonzero(descriptors == code)[0]
            if idx.size == 0:
                continue
            positions = offsets[idx, None] + np.arange(width)
            data[positions.reshape(-1)] = raw[idx, :width].reshape(-1)

        payload = np.concatenate([desc_bytes, data])
        return CompressedColumn(
            codec=self.name,
            n=n,
            payload=payload,
            meta={"signed": signed, "desc_nbytes": int(desc_bytes.size)},
            source_size_c=8,
        )

    def decompress(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        n = column.n
        try:
            desc_nbytes = int(column.meta["desc_nbytes"])
            signed = bool(column.meta["signed"])
        except KeyError as exc:
            raise CodecError(f"nsv column is missing meta entry {exc}") from exc
        if desc_nbytes < 0 or desc_nbytes > column.payload.size:
            raise CodecError("nsv payload truncated: descriptor section")
        if desc_nbytes * 4 < n:
            raise CodecError(
                f"nsv descriptor section covers {desc_nbytes * 4} elements, "
                f"column claims {n}"
            )
        desc_bytes = column.payload[:desc_nbytes]
        data = column.payload[desc_nbytes:]

        shifts = np.array([0, 2, 4, 6], dtype=np.uint8)
        descriptors = ((desc_bytes[:, None] >> shifts) & 0x3).reshape(-1)[:n]
        widths = WIDTH_CHOICES[descriptors]
        offsets = np.zeros(n, dtype=np.int64)
        np.cumsum(widths[:-1], out=offsets[1:])
        total = int(offsets[-1] + widths[-1]) if n else 0
        if data.size < total:
            raise CodecError(
                f"nsv payload truncated: data section holds {data.size} bytes, "
                f"descriptors require {total}"
            )

        wide = np.zeros((n, 8), dtype=np.uint8)
        for code, width in enumerate(WIDTH_CHOICES):
            idx = np.nonzero(descriptors == code)[0]
            if idx.size == 0:
                continue
            positions = offsets[idx, None] + np.arange(width)
            wide[idx, :width] = data[positions.reshape(-1)].reshape(-1, width)
            if signed and width < 8:
                negative = (wide[idx, width - 1] & 0x80).astype(bool)
                rows = idx[negative]
                wide[rows[:, None], np.arange(width, 8)] = 0xFF
        return wide.reshape(-1).view(np.int64).copy()

    def estimate_ratio(self, stats: ColumnStats) -> float:
        # Eq. 13 with the implementation's width choices: descriptors cost
        # Size_B / 4 bytes and each element its (rounded-up) own width.
        data_bytes = 0
        for exact_width, count in enumerate(stats.width_histogram):
            if count and exact_width:
                mapped = int(WIDTH_CHOICES[np.searchsorted(WIDTH_CHOICES, exact_width)])
                data_bytes += mapped * count
        denominator = stats.n / 4 + data_bytes
        return (stats.size_c * stats.n) / denominator
