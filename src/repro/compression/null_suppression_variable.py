"""Null Suppression with variable length (NSV) — eager, β = 1.

Every element is stored at its own significant width, chosen from four
machine-friendly widths, with a 2-bit length descriptor per element (the
``Size_B / 4`` descriptor bytes in Eq. 13).  The payload is not
element-aligned, so the server must decompress before querying — NSV is one
of the paper's "lightweight decompression-required" special cases, and its
descriptor-translation cost is why it dominates decompression time in
Fig. 8.
"""

from __future__ import annotations

import numpy as np

from ..errors import CodecError
from ..stats import ColumnStats
from .base import Codec, CompressedColumn
from .kernels import nsv_pack, nsv_unpack

#: The four encodable widths; a 2-bit descriptor selects one.
WIDTH_CHOICES = np.array([1, 2, 4, 8], dtype=np.int64)


def _descriptor_for_widths(exact_widths: np.ndarray) -> np.ndarray:
    """Map exact byte widths (1..8) to descriptor codes (0..3)."""
    return np.searchsorted(WIDTH_CHOICES, exact_widths, side="left").astype(np.uint8)


class NullSuppressionVariableCodec(Codec):
    """Per-element-width leading-zero suppression (the paper's NSV)."""

    name = "nsv"
    is_lazy = False
    needs_decompression = True
    capabilities = frozenset()

    def compress(self, values: np.ndarray) -> CompressedColumn:
        values = self._as_int64(values)
        n = int(values.size)
        signed = bool((values < 0).any())
        desc_bytes, data = nsv_pack(values, signed)
        payload = np.concatenate([desc_bytes, data])
        return CompressedColumn(
            codec=self.name,
            n=n,
            payload=payload,
            meta={"signed": signed, "desc_nbytes": int(desc_bytes.size)},
            source_size_c=8,
        )

    def decompress(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        n = column.n
        try:
            desc_nbytes = int(column.meta["desc_nbytes"])
            signed = bool(column.meta["signed"])
        except KeyError as exc:
            raise CodecError(f"nsv column is missing meta entry {exc}") from exc
        if desc_nbytes < 0 or desc_nbytes > column.payload.size:
            raise CodecError("nsv payload truncated: descriptor section")
        if desc_nbytes * 4 < n:
            raise CodecError(
                f"nsv descriptor section covers {desc_nbytes * 4} elements, "
                f"column claims {n}"
            )
        desc_bytes = column.payload[:desc_nbytes]
        data = column.payload[desc_nbytes:]
        return nsv_unpack(desc_bytes, data, n, signed)

    def estimate_ratio(self, stats: ColumnStats) -> float:
        # Eq. 13 with the implementation's width choices: descriptors cost
        # Size_B / 4 bytes and each element its (rounded-up) own width.
        data_bytes = 0
        for exact_width, count in enumerate(stats.width_histogram):
            if count and exact_width:
                mapped = int(WIDTH_CHOICES[np.searchsorted(WIDTH_CHOICES, exact_width)])
                data_bytes += mapped * count
        denominator = stats.n / 4 + data_bytes
        return (stats.size_c * stats.n) / denominator
