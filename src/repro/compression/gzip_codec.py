"""Gzip (DEFLATE) — the heavyweight comparison point of Sec. II-B.

Not part of the adaptive pool: the paper's motivation experiment shows Gzip
spends ~90 % of total stream-processing time compressing, which is exactly
what `benchmarks/bench_motivation_gzip.py` reproduces.  β = 1 and no direct
capabilities.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..errors import CodecError
from ..stats import ColumnStats
from .base import Codec, CompressedColumn


class GzipCodec(Codec):
    """zlib/DEFLATE over the raw column bytes (heavyweight baseline)."""

    name = "gzip"
    is_lazy = True
    needs_decompression = True
    capabilities = frozenset()

    def __init__(self, level: int = 6):
        if not 1 <= level <= 9:
            raise CodecError("zlib level must be in [1, 9]")
        self.level = level

    def compress(self, values: np.ndarray) -> CompressedColumn:
        values = self._as_int64(values)
        blob = zlib.compress(values.tobytes(), self.level)
        return CompressedColumn(
            codec=self.name,
            n=int(values.size),
            payload=np.frombuffer(blob, dtype=np.uint8).copy(),
            source_size_c=8,
        )

    def decompress(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        raw = zlib.decompress(column.payload.tobytes())
        out = np.frombuffer(raw, dtype=np.int64).copy()
        if out.size != column.n:
            raise CodecError("gzip payload does not reconstruct the column")
        return out

    def estimate_ratio(self, stats: ColumnStats) -> float:
        """Heuristic only — Gzip has no closed-form ratio.

        Entropy coding of a column with ``Kindnum`` distinct values needs
        about log2(Kindnum) bits per element plus dictionary overhead; runs
        compress further.  This estimate exists so the codec *can* be put in
        the pool for experiments; the default pool excludes it.
        """
        bits = max((stats.kindnum - 1).bit_length(), 1)
        per_element = bits / max(stats.avg_run_length, 1.0) / 8 + 0.05
        return stats.size_c / per_element
