"""Delta-chain encoding — lazy, β = 1 (pool extension, like PLWAH).

Stores the first value verbatim and every subsequent element as its
difference from the predecessor, at the fixed width the widest delta
needs.  Slowly-varying columns — stream timestamps above all — compress to
one byte per element or less of the Smart Grid's 8-byte timestamps.

Reconstruction is a prefix sum, so elements are not independently
addressable: the server must decompress before querying (β = 1), the same
trade RLE makes.  This codec is not part of the paper's Table I; it is the
kind of scheme Sec. VII-D invites integrating, and the pool-extension
benchmark uses it alongside PLWAH.
"""

from __future__ import annotations

import numpy as np

from ..stats import ColumnStats
from .base import Codec, CompressedColumn
from .kernels import pack_ints, unpack_ints


class DeltaChainCodec(Codec):
    """Successive-difference encoding with fixed-width deltas."""

    name = "deltachain"
    is_lazy = True
    needs_decompression = True
    capabilities = frozenset()

    #: transmitted metadata: the 8-byte first value
    META_BYTES = 8

    def compress(self, values: np.ndarray) -> CompressedColumn:
        values = self._as_int64(values)
        first = int(values[0])
        deltas = np.diff(values)
        if deltas.size == 0:
            payload = np.zeros(0, dtype=np.uint8)
            width = 1
        else:
            lo, hi = int(deltas.min()), int(deltas.max())
            from ..types import bytes_for_signed

            width = bytes_for_signed(lo, hi)
            payload = pack_ints(deltas, width, signed=True)
        return CompressedColumn(
            codec=self.name,
            n=int(values.size),
            payload=payload,
            meta={"first": first, "width": width},
            nbytes=payload.nbytes + self.META_BYTES,
            source_size_c=8,
        )

    def decompress(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        first = int(column.meta["first"])
        width = int(column.meta["width"])
        out = np.empty(column.n, dtype=np.int64)
        out[0] = first
        if column.n > 1:
            deltas = unpack_ints(column.payload, width, column.n - 1, signed=True)
            np.cumsum(deltas, out=out[1:])
            out[1:] += first
        return out

    def estimate_ratio(self, stats: ColumnStats) -> float:
        # one delta of delta_domain_bytes per element (the leading value
        # amortizes away over the batch)
        return stats.size_c / stats.delta_domain_bytes
