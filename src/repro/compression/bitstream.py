"""Bit-level Elias Gamma / Delta reference coders.

The pipeline itself transmits the paper's *aligned* format (every codeword
padded to the column-wide maximum codeword width, Sec. V-B), which keeps the
compressed column structured and queryable.  The classic unaligned
bitstream coders here serve two purposes: they are the ground truth for the
codeword-length math used by ``EGDomain``/``EDDomain``, and they implement
the actual variable-length wire format for anyone who wants maximum
compression at the cost of decompression (β = 1 usage).
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..errors import CodecError


class BitWriter:
    """Append-only MSB-first bit buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, nbits: int) -> None:
        """Append the ``nbits`` low bits of ``value`` (MSB first)."""
        if nbits < 0:
            raise CodecError("cannot write a negative number of bits")
        if nbits == 0:
            return
        if value < 0 or value >= (1 << nbits):
            raise CodecError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            self._bytes.append((self._acc >> self._nbits) & 0xFF)
        self._acc &= (1 << self._nbits) - 1

    def write_unary(self, count: int) -> None:
        """Append ``count`` zero bits followed by a one bit.

        Long zero runs extend the byte buffer directly: flushing to byte
        alignment first keeps the accumulator empty, so the run costs
        O(count / 8) appends instead of re-masking the accumulator for
        every 32-bit chunk.
        """
        if count < 0:
            raise CodecError("cannot write a negative number of bits")
        align = (8 - self._nbits) % 8
        if count >= align + 8:
            self.write(0, align)
            count -= align
            self._bytes.extend(b"\x00" * (count // 8))
            count %= 8
        self.write(1, count + 1)

    @property
    def bit_length(self) -> int:
        return len(self._bytes) * 8 + self._nbits

    def getvalue(self) -> bytes:
        """Finish the stream, zero-padding the final byte."""
        out = bytearray(self._bytes)
        if self._nbits:
            out.append((self._acc << (8 - self._nbits)) & 0xFF)
        return bytes(out)


class BitReader:
    """MSB-first reader over bytes produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # absolute bit position

    def read(self, nbits: int) -> int:
        if nbits < 0:
            raise CodecError("cannot read a negative number of bits")
        end = self._pos + nbits
        if end > len(self._data) * 8:
            raise CodecError("bitstream exhausted")
        value = 0
        pos = self._pos
        while nbits > 0:
            byte = self._data[pos // 8]
            avail = 8 - (pos % 8)
            take = min(avail, nbits)
            shift = avail - take
            value = (value << take) | ((byte >> shift) & ((1 << take) - 1))
            pos += take
            nbits -= take
        self._pos = pos
        return value

    def read_unary(self) -> int:
        """Count zero bits up to and including the terminating one bit."""
        count = 0
        while True:
            bit = self.read(1)
            if bit == 1:
                return count
            count += 1

    @property
    def bit_position(self) -> int:
        return self._pos


def _as_int64_stream(values: Iterable[int]) -> np.ndarray:
    if isinstance(values, np.ndarray):
        return np.asarray(values, dtype=np.int64)
    try:
        return np.array([int(v) for v in values], dtype=np.int64)
    except OverflowError as exc:
        raise CodecError("bitstream values must fit in int64") from exc


def gamma_encode_stream(values: Iterable[int]) -> bytes:
    """Classic Elias Gamma bitstream of positive integers.

    Dispatches to the batch bit-scattering kernel (or, under
    :func:`.kernels.scalar_reference_mode`, the :class:`BitWriter` loop).
    """
    from .kernels import gamma_stream_encode

    return gamma_stream_encode(_as_int64_stream(values))


def gamma_decode_stream(data: bytes, count: int) -> np.ndarray:
    """Decode ``count`` Elias Gamma codewords."""
    from .kernels import gamma_stream_decode

    return gamma_stream_decode(bytes(data), count)


def delta_encode_stream(values: Iterable[int]) -> bytes:
    """Classic Elias Delta bitstream of positive integers.

    Dispatches like :func:`gamma_encode_stream`.
    """
    from .kernels import delta_stream_encode

    return delta_stream_encode(_as_int64_stream(values))


def delta_decode_stream(data: bytes, count: int) -> np.ndarray:
    """Decode ``count`` Elias Delta codewords."""
    from .kernels import delta_stream_decode

    return delta_stream_decode(bytes(data), count)


def gamma_codeword_ints(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(codeword integers, codeword bit lengths) for Elias Gamma.

    A gamma codeword read as an integer equals the encoded value itself
    (the unary prefix contributes only leading zeros); this identity is what
    makes the aligned format directly processable.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size and values.min() < 1:
        raise CodecError("Elias Gamma encodes positive integers only")
    n = _floor_log2(values)
    return values.copy(), 2 * n + 1


def delta_codeword_ints(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(codeword integers, codeword bit lengths) for Elias Delta.

    The codeword of x with n = floor(log2 x) is gamma(n+1) followed by the
    n low bits of x; as an integer that is ``x + n * 2**n``, a strictly
    increasing (order-preserving) but non-affine map.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size and values.min() < 1:
        raise CodecError("Elias Delta encodes positive integers only")
    if values.size and values.max() >= (1 << 56):
        # code(x) = x + n * 2^n must stay within int64.
        raise CodecError("aligned Elias Delta supports values below 2^56")
    n = _floor_log2(values)
    codes = values + n * (np.int64(1) << n)
    length = n + 1
    ln = _floor_log2(length)
    bits = (2 * ln + 1) + n
    return codes, bits


def delta_codeword_invert(codes: np.ndarray) -> np.ndarray:
    """Invert :func:`delta_codeword_ints` (vectorized via range search)."""
    codes = np.asarray(codes, dtype=np.int64)
    # Codes for values with floor(log2 x) == n live in
    # [(n+1) * 2^n, (n+2) * 2^n - 1]; starts are strictly increasing in n.
    starts = np.array([(n + 1) << n for n in range(58)], dtype=np.int64)
    n = np.searchsorted(starts, codes, side="right").astype(np.int64) - 1
    if codes.size and (n < 0).any():
        raise CodecError("invalid Elias Delta codeword")
    return codes - n * (np.int64(1) << n)


def _floor_log2(values: np.ndarray) -> np.ndarray:
    """Vectorized floor(log2 v) for positive int64 values."""
    if values.size == 0:
        return np.zeros(0, dtype=np.int64)
    out = np.floor(np.log2(values.astype(np.float64))).astype(np.int64)
    # Repair float imprecision at exact powers of two near 2^52+.
    hi = values >= (np.int64(1) << 52)
    if hi.any():
        out[hi] = [int(v).bit_length() - 1 for v in values[hi]]
    # log2 may round up at v = 2^k - 1 for large k; verify and fix.
    too_big = (np.int64(1) << np.minimum(out, 62)) > values
    out[too_big] -= 1
    return out
