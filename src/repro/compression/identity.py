"""Identity "codec": the uncompressed baseline.

CompressStreamDB can turn compression off (Sec. VI); the baseline in every
experiment is the engine running with this codec, so all stage accounting
flows through the same code path.
"""

from __future__ import annotations

import numpy as np

from ..stats import ColumnStats
from .base import AffineCodec, CompressedColumn


class IdentityCodec(AffineCodec):
    """Stores the column verbatim (r = 1, eager, no decompression)."""

    name = "identity"
    is_lazy = False
    needs_decompression = False

    def compress(self, values: np.ndarray) -> CompressedColumn:
        values = self._as_int64(values)
        return CompressedColumn(
            codec=self.name,
            n=int(values.size),
            payload=values.view(np.uint8).copy(),
            meta={"offset": 0},
            source_size_c=8,
        )

    def decompress(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        return column.payload.view(np.int64).copy()

    def estimate_ratio(self, stats: ColumnStats) -> float:
        return 1.0

    def direct_codes(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        return column.payload.view(np.int64)
