"""Run Length Encoding (RLE) — lazy, β = 1.

Each run of equal consecutive values becomes (value, length) with the run
length in an extra 4-byte integer (the ``Size_C + 4`` of Eq. 15).  RLE
breaks positional alignment, so the server decompresses before querying.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import CodecError
from ..stats import ColumnStats
from .base import Codec, CompressedColumn
from .kernels import rle_runs

#: Bytes of the run-length counter (the "+4" in Eq. 15).
RUN_LENGTH_BYTES = 4


class RunLengthCodec(Codec):
    """Run-length encoding (the paper's RLE)."""

    name = "rle"
    is_lazy = True
    needs_decompression = True
    capabilities = frozenset()

    def compress(self, values: np.ndarray) -> CompressedColumn:
        values = self._as_int64(values)
        run_values, run_lengths = rle_runs(values)
        if run_lengths.max() >= (1 << (8 * RUN_LENGTH_BYTES - 1)):
            raise CodecError("run length exceeds the 4-byte counter")
        payload = np.concatenate(
            [
                run_values.view(np.uint8),
                run_lengths.astype(np.int32).view(np.uint8),
            ]
        )
        return CompressedColumn(
            codec=self.name,
            n=int(values.size),
            payload=payload,
            meta={"runs": int(run_values.size)},
            nbytes=run_values.size * (8 + RUN_LENGTH_BYTES),
            source_size_c=8,
        )

    def decompress(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        runs = int(column.meta["runs"])
        values_part = column.payload[: runs * 8].view(np.int64)
        lengths_part = column.payload[runs * 8 :].view(np.int32).astype(np.int64)
        out = np.repeat(values_part, lengths_part)
        if out.size != column.n:
            raise CodecError("run lengths do not reconstruct the original column")
        return out

    def run_view(self, column: CompressedColumn) -> Tuple[np.ndarray, np.ndarray]:
        """Expose the payload's (values, lengths) without expanding runs.

        Operators filter/aggregate at run granularity and the expansion to
        per-row values happens lazily, only when an operator needs it.
        """
        self._check_column(column)
        runs = int(column.meta["runs"])
        run_values = column.payload[: runs * 8].view(np.int64)
        run_lengths = column.payload[runs * 8 :].view(np.int32).astype(np.int64)
        if int(run_lengths.sum()) != column.n:
            raise CodecError("run lengths do not reconstruct the original column")
        return run_values, run_lengths

    def estimate_ratio(self, stats: ColumnStats) -> float:
        # Eq. 15: r = Size_C * AverageRunLength / (Size_C + 4)
        if stats.avg_run_length <= 0:
            return 0.0
        return (stats.size_c * stats.avg_run_length) / (stats.size_c + RUN_LENGTH_BYTES)
