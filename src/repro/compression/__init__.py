"""Lightweight compression algorithms of CompressStreamDB (Table I).

Eager (α = 0): Elias Gamma, Elias Delta, Null Suppression fixed, Null
Suppression variable.  Lazy (α = 1): Base-Delta, Run-Length, Dictionary,
Bitmap.  Extensions: PLWAH (Sec. VII-D); baselines: identity, gzip.
"""

from .base import (
    CAP_AFFINE,
    CAP_EQUALITY,
    CAP_ORDER,
    Codec,
    CompressedColumn,
)
from .base_delta import BaseDeltaCodec
from .bitmap import BitmapCodec
from .cascade import (
    BdNsvCascade,
    CascadeCodec,
    DictBitmapCascade,
    DictRleCascade,
    DeltaNsCascade,
)
from .delta_chain import DeltaChainCodec
from .dictionary import DictionaryCodec
from .elias_delta import EliasDeltaCodec
from .elias_gamma import EliasGammaCodec
from .gzip_codec import GzipCodec
from .identity import IdentityCodec
from .null_suppression import NullSuppressionCodec
from .null_suppression_variable import NullSuppressionVariableCodec
from .plwah import PLWAHCodec
from .registry import (
    CASCADE_POOL,
    PAPER_POOL,
    all_codec_names,
    default_pool,
    get_codec,
)
from .rle import RunLengthCodec

__all__ = [
    "CAP_AFFINE",
    "CAP_EQUALITY",
    "CAP_ORDER",
    "Codec",
    "CompressedColumn",
    "BaseDeltaCodec",
    "BdNsvCascade",
    "BitmapCodec",
    "CascadeCodec",
    "DeltaChainCodec",
    "DeltaNsCascade",
    "DictBitmapCascade",
    "DictRleCascade",
    "DictionaryCodec",
    "EliasDeltaCodec",
    "EliasGammaCodec",
    "GzipCodec",
    "IdentityCodec",
    "NullSuppressionCodec",
    "NullSuppressionVariableCodec",
    "PLWAHCodec",
    "RunLengthCodec",
    "CASCADE_POOL",
    "PAPER_POOL",
    "all_codec_names",
    "default_pool",
    "get_codec",
]
