"""Vectorized batch kernels for codec encode/decode hot paths.

Every function here has a scalar reference oracle in :mod:`.scalar_ref`
with identical signature and semantics; ``tests/test_vectorized_kernels.py``
asserts bit-identical compressed bytes and value-identical (dtype
included) decoded arrays, and the differential oracle's ``vectorized``
leg re-checks the pair under full query workloads.

The module-level dispatch flag (:func:`scalar_reference_mode`) swaps every
kernel for its scalar reference at once: codecs call the dispatchers below,
so a single context manager turns the whole engine into the
tuple-at-a-time oracle — that is how the fourth differential leg and the
speedup benchmarks obtain their baseline.

Kernel techniques (after MorphStore's vectorized compressed processing):

* exact-width integer packing rides :mod:`..types` (byte-slicing views);
* unaligned Elias Gamma/Delta streams are built by bit-scattering all
  codeword payloads into one bit array (``np.packbits``) and decoded by
  computing every codeword start via pointer doubling over the
  "next-set-bit" jump function — O(total_bits · log n) vector work
  instead of per-value ``BitReader`` calls;
* PLWAH encodes runs of 31-bit groups with run-length vectorization and
  decodes fills/literals/absorbed positions with bulk scatters.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Tuple

import numpy as np

from ..errors import CodecError
from ..stats import value_domain
from ..types import pack_int_array, unpack_int_array
from . import scalar_ref
from .bitstream import (
    _floor_log2,
    delta_codeword_ints as _delta_codeword_ints,
    delta_codeword_invert as _delta_codeword_invert,
    gamma_codeword_ints as _gamma_codeword_ints,
)

# ----- dispatch ---------------------------------------------------------

_STATE = threading.local()


def using_scalar_reference() -> bool:
    """Whether kernels currently dispatch to the scalar reference oracles."""
    return bool(getattr(_STATE, "scalar", False))


@contextmanager
def scalar_reference_mode(enabled: bool = True) -> Iterator[None]:
    """Swap every batch kernel for its tuple-at-a-time reference oracle.

    Used by the differential oracle's ``vectorized`` leg and the kernel
    benchmarks; nested uses restore the previous state.
    """
    previous = using_scalar_reference()
    _STATE.scalar = bool(enabled)
    try:
        yield
    finally:
        _STATE.scalar = previous


# ----- dispatchers (codecs call these) ----------------------------------


def pack_ints(values: np.ndarray, width: int, *, signed: bool = False) -> np.ndarray:
    if using_scalar_reference():
        return scalar_ref.pack_int_array(values, width, signed=signed)
    return pack_int_array(values, width, signed=signed)


def unpack_ints(
    payload: np.ndarray, width: int, count: int, *, signed: bool = False
) -> np.ndarray:
    if using_scalar_reference():
        return scalar_ref.unpack_int_array(payload, width, count, signed=signed)
    return unpack_int_array(payload, width, count, signed=signed)


def gamma_codewords(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    if using_scalar_reference():
        return scalar_ref.gamma_codeword_ints(values)
    return _gamma_codeword_ints(values)


def delta_codewords(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    if using_scalar_reference():
        return scalar_ref.delta_codeword_ints(values)
    return _delta_codeword_ints(values)


def delta_invert(codes: np.ndarray) -> np.ndarray:
    if using_scalar_reference():
        return scalar_ref.delta_codeword_invert(codes)
    return _delta_codeword_invert(codes)


def rle_runs(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(run values, run lengths) of consecutive equal elements."""
    if using_scalar_reference():
        return scalar_ref.rle_runs(values)
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return values.copy(), np.zeros(0, dtype=np.int64)
    boundaries = np.nonzero(values[1:] != values[:-1])[0] + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [values.size]])
    return values[starts], (ends - starts).astype(np.int64)


def dict_encode(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(sorted dictionary, per-element codes) via factorization."""
    if using_scalar_reference():
        return scalar_ref.dict_encode(values)
    dictionary, codes = np.unique(
        np.asarray(values, dtype=np.int64), return_inverse=True
    )
    return dictionary, codes.astype(np.int64)


def bd_deltas(values: np.ndarray) -> Tuple[int, np.ndarray]:
    """(base, per-element deltas) for Base-Delta."""
    if using_scalar_reference():
        return scalar_ref.bd_deltas(values)
    values = np.asarray(values, dtype=np.int64)
    base = int(values.min())
    return base, values - base


def bitmap_planes(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(sorted dictionary, bool planes of shape (kindnum, n))."""
    if using_scalar_reference():
        return scalar_ref.bitmap_planes(values)
    dictionary, codes = dict_encode(values)
    planes = np.zeros((dictionary.size, codes.size), dtype=bool)
    planes[codes, np.arange(codes.size)] = True
    return dictionary, planes


def gamma_stream_encode(values: np.ndarray) -> bytes:
    if using_scalar_reference():
        return scalar_ref.gamma_stream_encode(values)
    return _gamma_stream_encode_vec(values)


def gamma_stream_decode(data: bytes, count: int) -> np.ndarray:
    if using_scalar_reference():
        return scalar_ref.gamma_stream_decode(data, count)
    return _gamma_stream_decode_vec(data, count)


def delta_stream_encode(values: np.ndarray) -> bytes:
    if using_scalar_reference():
        return scalar_ref.delta_stream_encode(values)
    return _delta_stream_encode_vec(values)


def delta_stream_decode(data: bytes, count: int) -> np.ndarray:
    if using_scalar_reference():
        return scalar_ref.delta_stream_decode(data, count)
    return _delta_stream_decode_vec(data, count)


def nsv_pack(values: np.ndarray, signed: bool) -> Tuple[np.ndarray, np.ndarray]:
    if using_scalar_reference():
        return scalar_ref.nsv_pack(values, signed)
    return _nsv_pack_vec(values, signed)


def nsv_unpack(
    desc_bytes: np.ndarray, data: np.ndarray, count: int, signed: bool
) -> np.ndarray:
    if using_scalar_reference():
        return scalar_ref.nsv_unpack(desc_bytes, data, count, signed)
    return _nsv_unpack_vec(desc_bytes, data, count, signed)


def plwah_encode(bits: np.ndarray) -> np.ndarray:
    if using_scalar_reference():
        return scalar_ref.plwah_encode(bits)
    return _plwah_encode_vec(bits)


def plwah_decode(words: np.ndarray, n_bits: int) -> np.ndarray:
    if using_scalar_reference():
        return scalar_ref.plwah_decode(words, n_bits)
    return _plwah_decode_vec(words, n_bits)


# ----- shared index arithmetic ------------------------------------------


def _exclusive_cumsum(counts: np.ndarray) -> np.ndarray:
    out = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=out[1:])
    return out


def _within(counts: np.ndarray) -> np.ndarray:
    """``concat(arange(c) for c in counts)`` without a Python loop."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    return np.arange(total, dtype=np.int64) - np.repeat(
        _exclusive_cumsum(counts), counts
    )


# ----- unaligned Elias streams ------------------------------------------


def _scatter_bit_fields(
    bits: np.ndarray,
    field_starts: np.ndarray,
    field_values: np.ndarray,
    field_lengths: np.ndarray,
) -> None:
    """Write each value's ``length`` low bits MSB-first at its start offset."""
    total = int(field_lengths.sum())
    if total == 0:
        return
    within = _within(field_lengths)
    positions = np.repeat(field_starts, field_lengths) + within
    shifts = np.repeat(field_lengths, field_lengths) - 1 - within
    bits[positions] = (np.repeat(field_values, field_lengths) >> shifts) & 1


def _gamma_stream_encode_vec(values: np.ndarray) -> bytes:
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return b""
    if values.min() < 1:
        raise CodecError("Elias Gamma encodes positive integers only")
    n = _floor_log2(values)
    lengths = 2 * n + 1
    starts = _exclusive_cumsum(lengths)
    total_bits = int(lengths.sum())
    bits = np.zeros(-(-total_bits // 8) * 8, dtype=np.uint8)
    # a gamma codeword read as an integer is the value itself: its n + 1
    # significant bits start right after the n leading (unary) zeros
    _scatter_bit_fields(bits, starts + n, values, n + 1)
    return np.packbits(bits).tobytes()


def _delta_stream_encode_vec(values: np.ndarray) -> bytes:
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return b""
    if values.min() < 1:
        raise CodecError("Elias Delta encodes positive integers only")
    n = _floor_log2(values)
    length = n + 1
    ln = _floor_log2(length)
    lengths = (2 * ln + 1) + n
    starts = _exclusive_cumsum(lengths)
    total_bits = int(lengths.sum())
    bits = np.zeros(-(-total_bits // 8) * 8, dtype=np.uint8)
    # field 1: gamma codeword of `length` (ln + 1 significant bits after
    # ln unary zeros); field 2: the n low bits of the value
    _scatter_bit_fields(bits, starts + ln, length, ln + 1)
    _scatter_bit_fields(bits, starts + 2 * ln + 1, values - (np.int64(1) << n), n)
    return np.packbits(bits).tobytes()


def _next_one_table(bits: np.ndarray, dtype: type = np.int64) -> np.ndarray:
    """For each position p, the smallest q >= p with ``bits[q] == 1``.

    Positions past the last set bit map to ``bits.size`` (sentinel).
    """
    total = bits.size
    idx = np.where(bits, np.arange(total, dtype=dtype), total)
    return np.minimum.accumulate(idx[::-1])[::-1]


def _orbit(jump: np.ndarray, count: int, sentinel: int) -> np.ndarray:
    """First ``count`` iterates of 0 under ``jump``.

    ``jump`` must map ``sentinel`` to itself.  ``jump`` is squared only
    until a chunk of iterates can be chased with a few thousand scalar
    steps; each chunk is then expanded with vectorized ``jump`` gathers.
    The cost is O(len(jump) · log chunk) vector operations plus O(count)
    gather work — squaring all the way to ``count`` would instead pass
    over the full table log(count) times.
    """
    if count <= 0:
        return np.zeros(0, dtype=jump.dtype)
    chunk = 1
    g = jump
    while chunk * 16384 < count:
        g = g[g]
        chunk *= 2
    n_anchor = -(-count // chunk)
    anchors = np.empty(n_anchor, dtype=jump.dtype)
    pos = 0
    for i in range(n_anchor):
        anchors[i] = pos
        pos = int(g[pos])
    if chunk == 1:
        return anchors[:count]
    out = np.empty((n_anchor, chunk), dtype=jump.dtype)
    cur = anchors
    for j in range(chunk):
        out[:, j] = cur
        if j + 1 < chunk:
            cur = jump[cur]
    return out.reshape(-1)[:count]


def _stream_pos_dtype(total: int) -> type:
    # int32 position tables halve the memory traffic of the per-bit
    # passes; intermediates stay below ~2 * total + small constants
    return np.int32 if total < 2**30 else np.int64


def _read_bit_fields(
    payload: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Read each (start, length <= 63) bit field MSB-first into an int64.

    Reads an aligned 64-bit byte window per field plus one spill byte
    (offset <= 7 means a field can straddle at most 9 bytes), so the cost
    is per-field, not per-bit.  Zero-length fields read as 0.
    """
    if starts.size == 0:
        return np.zeros(0, dtype=np.int64)
    data = np.concatenate([payload, np.zeros(9, dtype=np.uint8)])
    byte0 = starts >> 3
    w = np.zeros(starts.size, dtype=np.uint64)
    for k in range(8):
        w = (w << np.uint64(8)) | data[byte0 + k]
    tail = data[byte0 + 8].astype(np.uint64)
    off = (starts & 7).astype(np.uint64)
    ln = lengths.astype(np.uint64)
    end = off + ln
    fits = end <= np.uint64(64)
    # when the field spills past the window, shift in the spill byte's
    # top bits; otherwise drop the window's low bits below the field
    spill = np.where(fits, np.uint64(0), end - np.uint64(64))
    rshift = np.where(fits, np.uint64(64) - end, np.uint64(0))
    combined = ((w << spill) | (tail >> (np.uint64(8) - spill))) >> rshift
    return (combined & ((np.uint64(1) << ln) - np.uint64(1))).astype(np.int64)


def _gamma_stream_decode_vec(data: bytes, count: int) -> np.ndarray:
    if count == 0:
        return np.empty(0, dtype=np.int64)
    payload = np.frombuffer(data, dtype=np.uint8)
    bits = np.unpackbits(payload)
    total = bits.size
    if total == 0:
        raise CodecError("bitstream exhausted")
    dtype = _stream_pos_dtype(total)
    nxt1 = _next_one_table(bits, dtype)
    # codeword at p: n = nxt1[p] - p zeros, the 1, then n payload bits
    p = np.arange(total, dtype=dtype)
    jump = np.minimum(2 * nxt1 - p + 1, total)
    jump = np.concatenate([jump, np.asarray([total], dtype=dtype)])
    starts = _orbit(jump, count, total).astype(np.int64)
    q = nxt1[np.minimum(starts, total - 1)].astype(np.int64)
    if starts[-1] >= total or q[-1] >= total:
        raise CodecError("bitstream exhausted")
    n = q - starts
    if (q + 1 + n > total).any():
        raise CodecError("bitstream exhausted")
    if n.max() > 62:
        raise CodecError("Elias Gamma codeword exceeds int64")
    # the codeword read as an integer is the value: n + 1 bits from q
    return _read_bit_fields(payload, q, n + 1)


def _delta_stream_decode_vec(data: bytes, count: int) -> np.ndarray:
    if count == 0:
        return np.empty(0, dtype=np.int64)
    payload = np.frombuffer(data, dtype=np.uint8)
    bits = np.unpackbits(payload)
    total = bits.size
    if total == 0:
        raise CodecError("bitstream exhausted")
    dtype = _stream_pos_dtype(total)
    nxt1 = _next_one_table(bits, dtype)
    q = nxt1
    # read the `length` gamma codeword at every position from a 16-bit
    # window at its marker (the marker bit itself is the leading 1 of
    # `length`): 1 + ln <= 7 bits plus a byte offset <= 7 always fit.
    # One precomputed window per byte, one gather.  The table is exact
    # wherever a codeword can start (ln <= 6); wider-prefix positions
    # yield clamped garbage, but the orbit never visits one — each
    # visited start is re-validated below before any value is emitted.
    ext = np.concatenate([payload, np.zeros(3, dtype=np.uint8)])
    w16 = (ext[:-1].astype(np.uint16) << 8) | ext[1:]
    # scratch-buffer passes: every 10 MB temporary saved is a page-fault
    # pass saved, which dominates at stream sizes past the L2 cache
    ln_c = q - np.arange(total, dtype=dtype)
    np.minimum(ln_c, 6, out=ln_c)
    scratch = q >> 3
    length = w16[scratch].astype(dtype)
    np.bitwise_and(q, 7, out=scratch)
    scratch += ln_c
    np.subtract(15, scratch, out=scratch)
    np.right_shift(length, scratch, out=length)
    np.left_shift(2, ln_c, out=scratch)
    scratch -= 1
    np.bitwise_and(length, scratch, out=length)
    # codeword at p spans q + 1 + ln + n bits with n = length - 1
    jump = ln_c
    jump += q
    jump += length
    np.minimum(jump, total, out=jump)
    jump = np.concatenate([jump, np.asarray([total], dtype=dtype)])
    starts = _orbit(jump, count, total).astype(np.int64)
    if starts[-1] >= total:
        raise CodecError("bitstream exhausted")
    s_q = nxt1[starts].astype(np.int64)
    s_ln = s_q - starts
    if (s_q >= total).any() or (s_ln > 6).any():
        raise CodecError("bitstream exhausted")
    s_rem = _read_bit_fields(payload, s_q + 1, s_ln)
    s_length = (np.int64(1) << s_ln) | s_rem
    s_n = s_length - 1
    if (s_q + 1 + s_ln + s_n > total).any():
        raise CodecError("bitstream exhausted")
    if s_n.max() > 62:
        raise CodecError("Elias Delta codeword exceeds int64")
    rest = _read_bit_fields(payload, s_q + 1 + s_ln, s_n)
    return (np.int64(1) << s_n) | rest


# ----- NSV --------------------------------------------------------------

_NSV_WIDTH_CHOICES = np.array([1, 2, 4, 8], dtype=np.int64)


def _nsv_pack_vec(values: np.ndarray, signed: bool) -> Tuple[np.ndarray, np.ndarray]:
    values = np.ascontiguousarray(values, dtype=np.int64)
    n = int(values.size)
    descriptors = np.searchsorted(
        _NSV_WIDTH_CHOICES, value_domain(values, signed=signed), side="left"
    ).astype(np.uint8)
    widths = _NSV_WIDTH_CHOICES[descriptors]

    # Pack descriptors 4 per byte (2 bits each, little positions first).
    padded = np.zeros(((n + 3) // 4) * 4, dtype=np.uint8)
    padded[:n] = descriptors
    quads = padded.reshape(-1, 4)
    desc_bytes = (
        quads[:, 0] | (quads[:, 1] << 2) | (quads[:, 2] << 4) | (quads[:, 3] << 6)
    ).astype(np.uint8)

    # Scatter each element's low `width` bytes into the data section.
    offsets = np.zeros(n, dtype=np.int64)
    np.cumsum(widths[:-1], out=offsets[1:])
    total = int(offsets[-1] + widths[-1]) if n else 0
    data = np.zeros(total, dtype=np.uint8)
    raw = values.view(np.uint8).reshape(n, 8)
    for code, width in enumerate(_NSV_WIDTH_CHOICES):
        idx = np.nonzero(descriptors == code)[0]
        if idx.size == 0:
            continue
        positions = offsets[idx, None] + np.arange(width)
        data[positions.reshape(-1)] = raw[idx, :width].reshape(-1)
    return desc_bytes, data


def _nsv_unpack_vec(
    desc_bytes: np.ndarray, data: np.ndarray, count: int, signed: bool
) -> np.ndarray:
    desc_bytes = np.ascontiguousarray(desc_bytes, dtype=np.uint8)
    data = np.ascontiguousarray(data, dtype=np.uint8)
    if desc_bytes.size * 4 < count:
        raise CodecError(
            f"nsv descriptor section covers {desc_bytes.size * 4} elements, "
            f"column claims {count}"
        )
    shifts = np.array([0, 2, 4, 6], dtype=np.uint8)
    descriptors = ((desc_bytes[:, None] >> shifts) & 0x3).reshape(-1)[:count]
    widths = _NSV_WIDTH_CHOICES[descriptors]
    offsets = np.zeros(count, dtype=np.int64)
    np.cumsum(widths[:-1], out=offsets[1:])
    total = int(offsets[-1] + widths[-1]) if count else 0
    if data.size < total:
        raise CodecError(
            f"nsv payload truncated: data section holds {data.size} bytes, "
            f"descriptors require {total}"
        )
    wide = np.zeros((count, 8), dtype=np.uint8)
    for code, width in enumerate(_NSV_WIDTH_CHOICES):
        idx = np.nonzero(descriptors == code)[0]
        if idx.size == 0:
            continue
        positions = offsets[idx, None] + np.arange(width)
        wide[idx, :width] = data[positions.reshape(-1)].reshape(-1, width)
        if signed and width < 8:
            negative = (wide[idx, width - 1] & 0x80).astype(bool)
            rows = idx[negative]
            wide[rows[:, None], np.arange(width, 8)] = 0xFF
    return wide.reshape(-1).view(np.int64).copy()


# ----- PLWAH ------------------------------------------------------------

_GROUP_BITS = scalar_ref.GROUP_BITS
_LITERAL_ONES = scalar_ref.LITERAL_ONES
_MAX_FILL = scalar_ref.MAX_FILL
_FILL_FLAG = scalar_ref._FILL_FLAG
_FILL_ONE = scalar_ref._FILL_ONE
_POS_SHIFT = scalar_ref._POS_SHIFT
_POS_MASK = scalar_ref._POS_MASK


# lint: scalar-parity (packing helper shared by both dispatch modes)
def to_groups(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean vector into 31-bit big-endian group integers.

    Each group is widened to 32 bits with a leading zero so the whole
    conversion is one ``np.packbits`` plus a big-endian uint32 view —
    no per-group integer arithmetic.
    """
    bits = np.asarray(bits, dtype=bool)
    n_groups = (bits.size + _GROUP_BITS - 1) // _GROUP_BITS
    padded = np.zeros(n_groups * _GROUP_BITS, dtype=bool)
    padded[: bits.size] = bits
    wide = np.zeros((n_groups, _GROUP_BITS + 1), dtype=bool)
    wide[:, 1:] = padded.reshape(n_groups, _GROUP_BITS)
    words = np.packbits(wide.reshape(-1)).view(">u4")
    return words.astype(np.int64)


# lint: scalar-parity (packing helper shared by both dispatch modes)
def from_groups(groups: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`to_groups`."""
    words = np.asarray(groups).astype(">u4")
    wide = np.unpackbits(words.view(np.uint8)).reshape(-1, _GROUP_BITS + 1)
    return wide[:, 1:].reshape(-1)[:n_bits].astype(bool)


def _plwah_encode_vec(bits: np.ndarray) -> np.ndarray:
    groups = to_groups(np.asarray(bits, dtype=bool))
    n = groups.size
    if n == 0:
        return np.zeros(0, dtype=np.uint32)
    boundary = np.nonzero(groups[1:] != groups[:-1])[0] + 1
    rstart = np.concatenate([[0], boundary])
    rend = np.concatenate([boundary, [n]])
    rval = groups[rstart]
    rlen = (rend - rstart).astype(np.int64)
    n_runs = rval.size

    is_zero = rval == 0
    is_ones = rval == _LITERAL_ONES
    is_fill = is_zero | is_ones
    nxt = np.concatenate([rval[1:], np.zeros(1, dtype=np.int64)])
    # a zero-fill absorbs the first group of the following run when that
    # group has exactly one set bit (runs alternate, so it is a literal)
    absorbs = (
        is_zero
        & (np.arange(n_runs) < n_runs - 1)
        & (nxt > 0)
        & ((nxt & (nxt - 1)) == 0)
    )
    absorbed_prev = np.concatenate([[False], absorbs[:-1]])

    chunks = np.where(is_fill, -(-rlen // _MAX_FILL), 0)
    words_per_run = np.where(is_fill, chunks, rlen - absorbed_prev)
    wstart = _exclusive_cumsum(words_per_run)
    out = np.zeros(int(words_per_run.sum()), dtype=np.int64)

    lit_counts = words_per_run[~is_fill]
    if lit_counts.size and lit_counts.sum():
        offsets = np.repeat(wstart[~is_fill], lit_counts) + _within(lit_counts)
        out[offsets] = np.repeat(rval[~is_fill], lit_counts)

    fill_chunks = chunks[is_fill]
    if fill_chunks.size:
        within = _within(fill_chunks)
        offsets = np.repeat(wstart[is_fill], fill_chunks) + within
        counts = np.minimum(
            np.repeat(rlen[is_fill], fill_chunks) - within * _MAX_FILL, _MAX_FILL
        )
        words = np.full(counts.size, _FILL_FLAG, dtype=np.int64) | counts
        words |= np.where(np.repeat(is_ones[is_fill], fill_chunks), _FILL_ONE, 0)
        # absorbed position rides on the *last* chunk of an absorbing run
        pos_of_run = np.where(
            absorbs, _GROUP_BITS - (_floor_log2(np.maximum(nxt, 1)) + 1) + 1, 0
        )
        is_last = within == np.repeat(fill_chunks, fill_chunks) - 1
        words |= np.where(
            is_last, np.repeat(pos_of_run[is_fill], fill_chunks), 0
        ) << _POS_SHIFT
        out[offsets] = words
    return out.astype(np.uint32)


def _plwah_decode_vec(words: np.ndarray, n_bits: int) -> np.ndarray:
    words = np.asarray(words, dtype=np.uint32).astype(np.int64)
    is_fill = (words & _FILL_FLAG) != 0
    fill_one = (words & _FILL_ONE) != 0
    pos = np.where(is_fill, (words >> _POS_SHIFT) & _POS_MASK, 0)
    if (is_fill & fill_one & (pos > 0)).any():
        raise CodecError("position list on a one-fill is invalid")
    counts = np.where(is_fill, words & _MAX_FILL, 1)
    groups_per_word = counts + (pos > 0)
    total = int(groups_per_word.sum())
    expected = (n_bits + _GROUP_BITS - 1) // _GROUP_BITS
    if total != expected:
        raise CodecError(
            f"PLWAH stream decodes to {total} groups, expected {expected}"
        )
    gstart = _exclusive_cumsum(groups_per_word)
    groups = np.zeros(total, dtype=np.int64)
    literal = ~is_fill
    if literal.any():
        groups[gstart[literal]] = words[literal]
    ones = is_fill & fill_one
    if ones.any():
        c = counts[ones]
        offsets = np.repeat(gstart[ones], c) + _within(c)
        groups[offsets] = _LITERAL_ONES
    absorbed = pos > 0
    if absorbed.any():
        groups[gstart[absorbed] + counts[absorbed]] = np.int64(1) << (
            _GROUP_BITS - pos[absorbed]
        )
    return from_groups(groups, n_bits)
