"""Bitmap encoding — lazy, β = 1.

Each distinct value owns a bitmap of batch length; element i sets bit i of
the bitmap of its value.  The transmitted size follows Eq. 17, which rounds
the number of bitmaps up to the next power of two (hardware bitmap indexes
allocate planes in powers of two); the zero padding planes are charged but
not materialized.  Bitmaps destroy the positional byte layout, so the
server decompresses (argmax over planes) before querying.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import CodecError
from ..stats import ColumnStats
from .base import Codec, CompressedColumn, PlaneView
from .kernels import bitmap_planes


def build_bitplanes(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(sorted distinct values, bool matrix of shape (kindnum, n))."""
    return bitmap_planes(np.asarray(values, dtype=np.int64))


class BitmapCodec(Codec):
    """One bitmap per distinct value (the paper's Bitmap)."""

    name = "bitmap"
    is_lazy = True
    needs_decompression = True
    capabilities = frozenset()

    def compress(self, values: np.ndarray) -> CompressedColumn:
        values = self._as_int64(values)
        dictionary, planes = build_bitplanes(values)
        packed = np.packbits(planes, axis=1)
        kindnum = int(dictionary.size)
        padded_planes = 1 << max((kindnum - 1).bit_length(), 0) if kindnum > 1 else 1
        charged = (padded_planes * values.size + 7) // 8 + dictionary.nbytes
        return CompressedColumn(
            codec=self.name,
            n=int(values.size),
            payload=packed.reshape(-1),
            meta={
                "dictionary": dictionary,
                "row_bytes": int(packed.shape[1]),
            },
            nbytes=int(charged),
            source_size_c=8,
        )

    def decompress(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        dictionary = column.meta["dictionary"]
        row_bytes = int(column.meta["row_bytes"])
        packed = column.payload.reshape(dictionary.size, row_bytes)
        planes = np.unpackbits(packed, axis=1)[:, : column.n]
        if not (planes.sum(axis=0) == 1).all():
            raise CodecError("bitmap planes are not a partition of positions")
        codes = planes.argmax(axis=0)
        return dictionary[codes]

    def plane_view(self, column: CompressedColumn) -> PlaneView:
        """Equality predicates unpack one plane; the rest stay packed."""
        self._check_column(column)
        dictionary = column.meta["dictionary"]
        row_bytes = int(column.meta["row_bytes"])
        packed = column.payload.reshape(dictionary.size, row_bytes)
        n = column.n

        def mask_fn(idx: int) -> np.ndarray:
            return np.unpackbits(packed[idx])[:n].astype(bool)

        return PlaneView(dictionary, n, mask_fn)

    def estimate_ratio(self, stats: ColumnStats) -> float:
        # Eq. 17: r = Size_C / (2^ceil(log2 Kindnum) / 8)
        return stats.size_c / (stats.bitmap_bits_per_element / 8)

    def estimate_transmitted_ratio(self, stats: ColumnStats) -> float:
        planes = stats.bitmap_bits_per_element * stats.n / 8
        dictionary = stats.kindnum * stats.size_c
        return (stats.size_c * stats.n) / (planes + dictionary)

    def cost_scale(self, stats: ColumnStats, calibration_kindnum: int) -> float:
        # building/decoding planes is O(n * Kindnum)
        return max(stats.kindnum, 1) / max(calibration_kindnum, 1)
