"""Dictionary encoding (DICT) — lazy, β = 0.

Maintains a dictionary of the distinct values of a batch and replaces each
element by its index (Eq. 16).  We keep the dictionary *sorted*, which makes
codes order-preserving: group-by, distinct, equality and range predicates
all run directly on codes; only arithmetic aggregation needs a (cheap,
gather-based) decode.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import CodecError
from ..stats import ColumnStats
from .base import CAP_EQUALITY, CAP_ORDER, Codec, CompressedColumn
from .kernels import dict_encode, pack_ints, unpack_ints


class DictionaryCodec(Codec):
    """Order-preserving dictionary encoding (the paper's DICT)."""

    name = "dict"
    is_lazy = True
    needs_decompression = False
    capabilities = frozenset({CAP_EQUALITY, CAP_ORDER})

    def compress(self, values: np.ndarray) -> CompressedColumn:
        values = self._as_int64(values)
        dictionary, codes = dict_encode(values)
        width = self._code_width(dictionary.size)
        payload = pack_ints(codes, width, signed=False)
        nbytes = payload.nbytes + dictionary.nbytes
        return CompressedColumn(
            codec=self.name,
            n=int(values.size),
            payload=payload,
            meta={"dictionary": dictionary, "width": width},
            nbytes=nbytes,
            source_size_c=8,
        )

    def decompress(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        codes = self.direct_codes(column)
        return column.meta["dictionary"][codes]

    def estimate_ratio(self, stats: ColumnStats) -> float:
        # Eq. 16: r = Size_C / ceil(log2(Kindnum) / 8)
        return stats.size_c / stats.dict_code_bytes

    def estimate_transmitted_ratio(self, stats: ColumnStats) -> float:
        codes = stats.dict_code_bytes * stats.n
        dictionary = stats.kindnum * stats.size_c
        return (stats.size_c * stats.n) / (codes + dictionary)

    def direct_codes(self, column: CompressedColumn) -> np.ndarray:
        self._check_column(column)
        return unpack_ints(column.payload, int(column.meta["width"]), column.n)

    def encode_literal(self, column: CompressedColumn, value: int) -> Optional[int]:
        self._check_column(column)
        dictionary = column.meta["dictionary"]
        idx = int(np.searchsorted(dictionary, value))
        if idx < dictionary.size and int(dictionary[idx]) == int(value):
            return idx
        return None

    def lower_bound(self, column: CompressedColumn, value: int) -> int:
        self._check_column(column)
        return int(np.searchsorted(column.meta["dictionary"], value, side="left"))

    def decode_codes(self, column: CompressedColumn, codes: np.ndarray) -> np.ndarray:
        self._check_column(column)
        dictionary = column.meta["dictionary"]
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.min() < 0 or codes.max() >= dictionary.size):
            raise CodecError("dictionary code out of range")
        return dictionary[codes]

    @staticmethod
    def _code_width(kindnum: int) -> int:
        if kindnum <= 1:
            return 1
        bits = (kindnum - 1).bit_length()
        return max((bits + 7) // 8, 1)
