"""Exception hierarchy for the CompressStreamDB reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at the engine boundary while still being able to
distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SchemaError(ReproError):
    """A stream schema is malformed or a batch does not match its schema."""


class CodecError(ReproError):
    """A compression codec was used incorrectly (wrong payload, bad meta)."""


class CodecNotApplicable(CodecError):
    """The codec cannot encode this column (e.g. Elias codes on negatives).

    The adaptive selector treats this as "skip the codec", mirroring the
    paper's note that Elias Gamma/Delta cannot run on the Linear Road
    Benchmark because it contains negative numbers.
    """


class QuantizationError(ReproError):
    """A float column cannot be losslessly quantized to integers."""


class SQLSyntaxError(ReproError):
    """The streaming SQL text could not be tokenized or parsed.

    ``position`` is the character offset into the query text; ``line`` and
    ``column`` are 1-based when known (-1 otherwise) so callers can point
    at the offending lexeme in multi-line query text.
    """

    def __init__(
        self,
        message: str,
        position: int = -1,
        line: int = -1,
        column: int = -1,
    ):
        super().__init__(message)
        self.position = position
        self.line = line
        self.column = column


class PlanningError(ReproError):
    """The parsed query cannot be planned against the stream schema."""


class CalibrationError(ReproError):
    """Cost-model calibration failed or produced unusable coefficients."""


class ChannelError(ReproError):
    """The simulated network channel was configured or used incorrectly."""


class TransportError(ReproError):
    """A transport envelope is malformed or the reliable link was misused.

    Receiver-side envelope failures are *detected* corruption: the
    recovery protocol answers them with a NACK and a retransmission, so
    under normal operation this error never escapes the transport.
    """


class EngineError(ReproError):
    """Engine-level misuse (bad mode, processing after close, etc.)."""


class ServeError(ReproError):
    """The multi-tenant serving layer was configured or used incorrectly.

    Engine/transport failures inside a tenant are *not* this error: they
    keep their own taxonomy (CodecError, WireFormatError, ...) and are
    contained by the tenant supervisor's recovery point.  ServeError
    marks misuse of the serving layer itself and is never swallowed.
    """


class AnalysisError(ReproError):
    """The static invariant analyzer was misconfigured or misused."""


class WorkloadError(ReproError):
    """The workload replay harness was misconfigured or a fixture is
    missing/stale.

    Query-result mismatches against golden fixtures are *not* this error:
    they are reported in the replay report's pass-rate accounting so a
    campaign keeps running past the first failure.
    """
