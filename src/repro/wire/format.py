"""Binary wire format for compressed batches.

Sec. VI sketches embedding CompressStreamDB's compression module into other
engines (e.g. as a custom Flink serializer).  This module is that
integration surface: a self-describing binary frame that round-trips a
:class:`~repro.stream.batch.CompressedBatch` through real bytes, so any
transport (socket, Kafka, file) can carry compressed batches between a
CompressStreamDB client and server.

Frame layout (little-endian)::

    magic   4s   = b"CSDB"
    version u16  = 1
    n       u32  tuples in the batch
    ncols   u16
    per column:
        name_len u16, name utf-8
        codec_len u8, codec name utf-8
        size_c   u8   (declared wire width of the source field)
        nbytes   u64  (charged transmitted size)
        meta: count u16, then per entry
            key_len u8, key utf-8, tag u8, value
            tags: 0 = int64, 1 = bool, 2 = int64 ndarray, 3 = bytes/uint8
        payload_len u64, payload bytes

The frame is *checksummed* (crc32 trailer) so transport corruption is
detected rather than decoded into wrong query answers.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Dict, Tuple

import numpy as np

from ..compression.base import CompressedColumn
from ..errors import CodecError, SchemaError
from ..stream.batch import CompressedBatch
from ..stream.schema import Schema

MAGIC = b"CSDB"
VERSION = 1

_TAG_INT = 0
_TAG_BOOL = 1
_TAG_I64_ARRAY = 2
_TAG_BYTES = 3


class WireFormatError(CodecError):
    """The byte stream is not a valid CompressStreamDB frame."""


def _pack_meta_value(value: Any) -> Tuple[int, bytes]:
    if isinstance(value, (bool, np.bool_)):
        return _TAG_BOOL, struct.pack("<B", int(value))
    if isinstance(value, (int, np.integer)):
        return _TAG_INT, struct.pack("<q", int(value))
    if isinstance(value, np.ndarray):
        if value.dtype == np.uint8:
            return _TAG_BYTES, struct.pack("<Q", value.size) + value.tobytes()
        arr = np.ascontiguousarray(value, dtype=np.int64)
        return _TAG_I64_ARRAY, struct.pack("<Q", arr.size) + arr.tobytes()
    if isinstance(value, (bytes, bytearray)):
        return _TAG_BYTES, struct.pack("<Q", len(value)) + bytes(value)
    raise WireFormatError(f"meta value of type {type(value).__name__} not serializable")


def _unpack_meta_value(tag: int, buf: memoryview, pos: int) -> Tuple[Any, int]:
    if tag == _TAG_BOOL:
        return bool(buf[pos]), pos + 1
    if tag == _TAG_INT:
        (v,) = struct.unpack_from("<q", buf, pos)
        return int(v), pos + 8
    if tag in (_TAG_I64_ARRAY, _TAG_BYTES):
        (count,) = struct.unpack_from("<Q", buf, pos)
        pos += 8
        if tag == _TAG_I64_ARRAY:
            nbytes = count * 8
            arr = np.frombuffer(buf[pos : pos + nbytes], dtype=np.int64).copy()
        else:
            nbytes = count
            arr = np.frombuffer(buf[pos : pos + nbytes], dtype=np.uint8).copy()
        if arr.size != count:
            raise WireFormatError("truncated meta array")
        return arr, pos + nbytes
    raise WireFormatError(f"unknown meta tag {tag}")


def _serialize_column(name: str, cc: CompressedColumn) -> bytes:
    parts = []
    name_b = name.encode("utf-8")
    codec_b = cc.codec.encode("utf-8")
    parts.append(struct.pack("<H", len(name_b)) + name_b)
    parts.append(struct.pack("<B", len(codec_b)) + codec_b)
    parts.append(struct.pack("<BQ", cc.source_size_c, cc.nbytes))
    meta_items = sorted(cc.meta.items())
    parts.append(struct.pack("<H", len(meta_items)))
    for key, value in meta_items:
        key_b = key.encode("utf-8")
        tag, payload = _pack_meta_value(value)
        parts.append(
            struct.pack("<B", len(key_b)) + key_b + struct.pack("<B", tag) + payload
        )
    payload = np.ascontiguousarray(cc.payload, dtype=np.uint8).tobytes()
    parts.append(struct.pack("<Q", len(payload)) + payload)
    return b"".join(parts)


def serialize_batch(batch: CompressedBatch) -> bytes:
    """Encode a compressed batch into one self-describing binary frame."""
    body_parts = [
        MAGIC,
        struct.pack("<HIH", VERSION, batch.n, len(batch.columns)),
    ]
    for name in batch.schema.names:
        body_parts.append(_serialize_column(name, batch.columns[name]))
    body = b"".join(body_parts)
    return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)


def deserialize_batch(data: bytes, schema: Schema) -> CompressedBatch:
    """Decode a frame produced by :func:`serialize_batch`.

    Validates magic, version, checksum and schema consistency.  Every
    malformed input — short buffers, bad lengths, invalid utf-8, any
    low-level parse failure — surfaces as :class:`WireFormatError`; no raw
    ``struct.error`` or ``UnicodeDecodeError`` ever escapes, so the
    transport's recovery protocol can treat ``WireFormatError`` as "this
    frame is corrupt, NACK it" without a catch-all.
    """
    if len(data) < len(MAGIC) + 8 + 4:
        raise WireFormatError("frame too short")
    body, (crc,) = data[:-4], struct.unpack("<I", data[-4:])
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise WireFormatError("checksum mismatch: frame corrupted in transit")
    buf = memoryview(body)
    if bytes(buf[:4]) != MAGIC:
        raise WireFormatError("bad magic: not a CompressStreamDB frame")
    version, n, ncols = struct.unpack_from("<HIH", buf, 4)
    if version != VERSION:
        raise WireFormatError(f"unsupported frame version {version}")
    pos = 4 + 8
    columns: Dict[str, CompressedColumn] = {}
    try:
        for _ in range(ncols):
            name, cc, pos = _deserialize_column(buf, pos, n)
            columns[name] = cc
    except WireFormatError:
        raise
    except (
        struct.error, UnicodeDecodeError, ValueError, IndexError, OverflowError
    ) as exc:
        raise WireFormatError(f"malformed frame: {exc}") from exc
    if pos != len(body):
        raise WireFormatError("trailing bytes after the last column")
    try:
        return CompressedBatch(schema=schema, n=int(n), columns=columns)
    except SchemaError as exc:
        raise WireFormatError(f"frame does not match schema: {exc}") from exc


def _read_bytes(buf: memoryview, pos: int, count: int, what: str) -> Tuple[bytes, int]:
    """Bounds-checked slice (plain slicing silently shortens past the end)."""
    if count < 0 or pos + count > len(buf):
        raise WireFormatError(f"truncated {what}")
    return bytes(buf[pos : pos + count]), pos + count


def _deserialize_column(buf: memoryview, pos: int, n: int):
    (name_len,) = struct.unpack_from("<H", buf, pos)
    pos += 2
    name_b, pos = _read_bytes(buf, pos, name_len, "column name")
    name = name_b.decode("utf-8")
    (codec_len,) = struct.unpack_from("<B", buf, pos)
    pos += 1
    codec_b, pos = _read_bytes(buf, pos, codec_len, "codec name")
    codec = codec_b.decode("utf-8")
    size_c, nbytes = struct.unpack_from("<BQ", buf, pos)
    pos += 9
    (meta_count,) = struct.unpack_from("<H", buf, pos)
    pos += 2
    meta: Dict[str, Any] = {}
    for _ in range(meta_count):
        (key_len,) = struct.unpack_from("<B", buf, pos)
        pos += 1
        key_b, pos = _read_bytes(buf, pos, key_len, "meta key")
        key = key_b.decode("utf-8")
        (tag,) = struct.unpack_from("<B", buf, pos)
        pos += 1
        meta[key], pos = _unpack_meta_value(tag, buf, pos)
    (payload_len,) = struct.unpack_from("<Q", buf, pos)
    pos += 8
    if pos + payload_len > len(buf):
        raise WireFormatError("truncated column payload")
    payload = np.frombuffer(buf[pos : pos + payload_len], dtype=np.uint8).copy()
    pos += payload_len
    cc = CompressedColumn(
        codec=codec,
        n=int(n),
        payload=payload,
        meta=meta,
        nbytes=int(nbytes),
        source_size_c=int(size_c),
    )
    return name, cc, pos


def frame_size(batch: CompressedBatch) -> int:
    """Exact framed size in bytes (payloads + all headers + checksum)."""
    return len(serialize_batch(batch))
