"""Embeddable stream serializer (the Sec. VI Flink-integration story).

The paper suggests wrapping CompressStreamDB's compression module into a
custom serializer so other engines gain compressed transport without
adopting the whole system.  :class:`StreamSerializer` is that component:
it owns a selector (adaptive by default), compresses every batch it is
handed into a self-describing wire frame, and decompresses frames back
into plain batches on the receiving side — no query engine involved.

>>> serializer = StreamSerializer(schema)          # doctest: +SKIP
>>> frame = serializer.serialize(batch)            # bytes for the wire
>>> restored = serializer.deserialize(frame)       # a plain Batch again
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..compression.registry import get_codec
from ..net.channel import Channel
from ..stream.batch import Batch
from ..stream.schema import Schema
from .format import WireFormatError, deserialize_batch, serialize_batch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.calibration import CalibrationTable


@dataclass
class SerializerStats:
    """Byte accounting across the serializer's lifetime."""

    batches: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    #: codec decisions per re-selection event
    decisions: List[Dict[str, str]] = field(default_factory=list)

    @property
    def ratio(self) -> float:
        if self.bytes_out == 0:
            return float("inf")
        return self.bytes_in / self.bytes_out


class StreamSerializer:
    """Compressing serializer for columnar batches of one schema.

    ``codec`` pins one static codec; otherwise an adaptive selector picks
    per column, priced against ``bandwidth_mbps`` (what the serializer's
    host system pays per byte).  No query runs here, so selection
    optimizes compression + transmission only.
    """

    def __init__(
        self,
        schema: Schema,
        codec: Optional[str] = None,
        bandwidth_mbps: float = 500.0,
        redecide_every: int = 16,
        calibration: Optional[CalibrationTable] = None,
    ):
        # core imports happen here, not at module level: the wire package
        # sits below core in the layering (core.pipeline ships frames via
        # net.transport, which needs wire.format) and a module-level
        # import would close an import cycle
        from ..core.calibration import default_calibration
        from ..core.client import Client
        from ..core.cost_model import CostModel, SystemParams
        from ..core.query_profile import QueryProfile
        from ..core.selector import AdaptiveSelector, SelectorBase, StaticSelector

        self.schema = schema
        if codec is not None:
            selector: SelectorBase = StaticSelector(codec)
        else:
            table = calibration or default_calibration()
            model = CostModel(
                table, SystemParams(), Channel(bandwidth_mbps=bandwidth_mbps)
            )
            selector = AdaptiveSelector(model)
        self._client = Client(
            schema=schema,
            selector=selector,
            profile=QueryProfile(),  # no query: transport-only costs
            redecide_every=redecide_every,
        )
        self.stats = SerializerStats()

    def serialize(self, batch: Batch, upcoming: Sequence[Batch] = ()) -> bytes:
        """Compress and frame one batch (``upcoming`` feeds the selector)."""
        if batch.schema != self.schema:
            raise WireFormatError(
                "batch schema does not match the serializer schema"
            )
        outcome = self._client.compress_batch(batch, upcoming=upcoming)
        frame = serialize_batch(outcome.batch)
        self.stats.batches += 1
        self.stats.bytes_in += batch.uncompressed_nbytes
        self.stats.bytes_out += len(frame)
        if outcome.reselected:
            self.stats.decisions.append(outcome.choices)
        return frame

    def deserialize(self, frame: bytes) -> Batch:
        """Decode a frame back into a plain (decompressed) batch."""
        compressed = deserialize_batch(frame, self.schema)
        columns = {}
        for name, cc in compressed.columns.items():
            codec = get_codec(cc.codec)
            columns[name] = codec.decompress(cc)
        return Batch(self.schema, columns)

    @property
    def current_choices(self) -> Dict[str, str]:
        return self._client.current_choices
