"""Self-describing binary wire format for compressed batches (Sec. VI's
custom-serializer integration path)."""

from .format import (
    WireFormatError,
    deserialize_batch,
    frame_size,
    serialize_batch,
)
from .serializer import SerializerStats, StreamSerializer

__all__ = [
    "WireFormatError",
    "deserialize_batch",
    "frame_size",
    "serialize_batch",
    "SerializerStats",
    "StreamSerializer",
]
